//! The `distGen` / `randGen` artificial data generators (Appendix B).
//!
//! The generators build a synthetic spatiotemporal collection in three
//! steps, exactly as the paper describes:
//!
//! 1. **Background frequencies** — every (term, stream, timestamp) cell gets
//!    a random frequency drawn from an exponential distribution (the paper
//!    verified this is a good fit for the Topix background traffic). The
//!    background is generated *lazily* from a hash of the coordinates, so a
//!    dataset with 128,000 streams and 10,000 terms (the largest point of
//!    Figure 8) never has to be materialized.
//! 2. **Pattern generation** — each of the requested ground-truth patterns
//!    picks a term uniformly at random, a timeframe uniformly at random, and
//!    a set of streams: `distGen` starts from a random seed stream and adds
//!    other streams with probability decaying in their distance from it
//!    (producing the spatially coherent patterns of real events), while
//!    `randGen` samples an arbitrary subset of streams.
//! 3. **Frequency injection** — each included stream receives extra
//!    frequency over the pattern's timeframe following a Weibull profile
//!    whose shape, scale and peak are drawn independently per stream, "to
//!    ensure high variability in the produced patterns".

use crate::distributions::Weibull;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use stb_geo::Point2D;
use stb_timeseries::TimeInterval;

/// How the streams of a pattern are selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamSelection {
    /// `distGen`: a random seed stream plus neighbours, with inclusion
    /// probability decaying exponentially in the distance from the seed
    /// (scale = the given fraction of the map diagonal).
    DistGen {
        /// Distance decay scale as a fraction of the map diagonal (e.g. 0.1).
        decay_fraction: f64,
    },
    /// `randGen`: a uniformly random subset of streams.
    RandGen,
}

/// Configuration of the artificial data generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of streams `|D|`.
    pub n_streams: usize,
    /// Timeline length (the paper uses 365 to emulate one year of days).
    pub timeline: usize,
    /// Number of terms in the vocabulary (the paper uses 10,000).
    pub n_terms: usize,
    /// Number of ground-truth patterns to inject (the paper uses 1,000).
    pub n_patterns: usize,
    /// Stream selection mechanism (`distGen` or `randGen`).
    pub selection: StreamSelection,
    /// Mean of the exponential background frequency.
    pub background_mean: f64,
    /// Range of the per-stream burst peak `P` (min, max).
    pub peak_range: (f64, f64),
    /// Minimum pattern timeframe length, in timestamps.
    pub min_pattern_len: usize,
    /// Maximum pattern timeframe length, in timestamps.
    pub max_pattern_len: usize,
    /// Upper bound on the number of streams included in one pattern.
    pub max_streams_per_pattern: usize,
    /// Side length of the square map on which stream positions are drawn.
    pub map_size: f64,
    /// Probability that a given (term, stream) pair carries background
    /// traffic at all. Real corpora are sparse — a term is only ever used by
    /// a subset of the sources — and the scalability experiment of Figure 8
    /// relies on this: the number of streams carrying a given term stays
    /// bounded while the total number of streams grows. 1.0 means every
    /// stream mentions every term (the dense worst case).
    pub background_density: f64,
    /// RNG seed; the dataset is fully determined by the configuration.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_streams: 200,
            timeline: 365,
            n_terms: 10_000,
            n_patterns: 1_000,
            selection: StreamSelection::DistGen {
                decay_fraction: 0.08,
            },
            background_mean: 1.0,
            peak_range: (30.0, 80.0),
            min_pattern_len: 5,
            max_pattern_len: 40,
            max_streams_per_pattern: 64,
            map_size: 1000.0,
            background_density: 1.0,
            seed: 7,
        }
    }
}

impl GeneratorConfig {
    /// The paper's full-scale Table 2 configuration (1000 patterns, 365-day
    /// timeline, 10,000 terms) at the given stream count and selection.
    pub fn paper_scale(n_streams: usize, selection: StreamSelection, seed: u64) -> Self {
        Self {
            n_streams,
            selection,
            seed,
            ..Default::default()
        }
    }
}

/// A ground-truth injected pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthPattern {
    /// The term (0-based index into the generator's vocabulary) exhibiting
    /// the pattern.
    pub term: usize,
    /// The streams included in the pattern, sorted.
    pub streams: Vec<usize>,
    /// The pattern's timeframe.
    pub interval: TimeInterval,
}

/// A generated dataset: stream positions, ground-truth patterns, and lazy
/// access to the per-(term, stream) frequency series.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: GeneratorConfig,
    positions: Vec<Point2D>,
    patterns: Vec<GroundTruthPattern>,
    /// Per pattern, per included stream (parallel to `patterns[i].streams`),
    /// the injected frequency profile over the pattern's timeframe.
    injections: Vec<Vec<Vec<f64>>>,
    /// Term index → patterns affecting that term.
    by_term: HashMap<usize, Vec<usize>>,
}

/// The generator itself.
#[derive(Debug, Clone, Default)]
pub struct PatternGenerator;

impl PatternGenerator {
    /// Generates a dataset from the configuration.
    pub fn generate(config: GeneratorConfig) -> SyntheticDataset {
        assert!(config.n_streams > 0, "need at least one stream");
        assert!(
            config.timeline > 1,
            "timeline must have at least two timestamps"
        );
        assert!(config.n_terms > 0, "need at least one term");
        assert!(
            config.min_pattern_len >= 1 && config.min_pattern_len <= config.max_pattern_len,
            "invalid pattern length range"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Stream positions: uniform over the square map.
        let positions: Vec<Point2D> = (0..config.n_streams)
            .map(|_| {
                Point2D::new(
                    rng.gen_range(0.0..config.map_size),
                    rng.gen_range(0.0..config.map_size),
                )
            })
            .collect();

        let mut patterns = Vec::with_capacity(config.n_patterns);
        let mut injections = Vec::with_capacity(config.n_patterns);
        let mut by_term: HashMap<usize, Vec<usize>> = HashMap::new();
        for _ in 0..config.n_patterns {
            // Term and timeframe, uniformly at random.
            let term = rng.gen_range(0..config.n_terms);
            let len =
                rng.gen_range(config.min_pattern_len..=config.max_pattern_len.min(config.timeline));
            let start = rng.gen_range(0..config.timeline - len + 1);
            let interval = TimeInterval::new(start, start + len - 1);

            // Stream selection.
            let streams = match config.selection {
                StreamSelection::DistGen { decay_fraction } => {
                    select_dist_gen(&positions, &config, decay_fraction, &mut rng)
                }
                StreamSelection::RandGen => select_rand_gen(&config, &mut rng),
            };

            // Frequency injection: an independent Weibull profile per stream.
            let profiles: Vec<Vec<f64>> = streams
                .iter()
                .map(|_| {
                    let shape = rng.gen_range(1.2..5.0);
                    let scale = rng.gen_range((len as f64 / 4.0).max(1.0)..(len as f64).max(2.0));
                    let peak = rng.gen_range(config.peak_range.0..config.peak_range.1);
                    Weibull::new(shape, scale).profile(len, peak)
                })
                .collect();

            by_term.entry(term).or_default().push(patterns.len());
            patterns.push(GroundTruthPattern {
                term,
                streams,
                interval,
            });
            injections.push(profiles);
        }

        SyntheticDataset {
            config,
            positions,
            patterns,
            injections,
            by_term,
        }
    }
}

fn select_dist_gen(
    positions: &[Point2D],
    config: &GeneratorConfig,
    decay_fraction: f64,
    rng: &mut StdRng,
) -> Vec<usize> {
    let seed_stream = rng.gen_range(0..config.n_streams);
    let diag = config.map_size * std::f64::consts::SQRT_2;
    let scale = (decay_fraction * diag).max(f64::MIN_POSITIVE);
    let mut streams = vec![seed_stream];
    // Visit the other streams in order of increasing distance so the cap
    // keeps the nearest (most realistic) ones.
    let mut order: Vec<usize> = (0..config.n_streams)
        .filter(|&i| i != seed_stream)
        .collect();
    order.sort_by(|&a, &b| {
        let da = positions[a].distance_sq(&positions[seed_stream]);
        let db = positions[b].distance_sq(&positions[seed_stream]);
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    });
    for i in order {
        if streams.len() >= config.max_streams_per_pattern {
            break;
        }
        let d = positions[i].distance(&positions[seed_stream]);
        let p = (-d / scale).exp();
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            streams.push(i);
        }
    }
    streams.sort_unstable();
    streams
}

fn select_rand_gen(config: &GeneratorConfig, rng: &mut StdRng) -> Vec<usize> {
    let max = config.max_streams_per_pattern.min(config.n_streams);
    let count = rng.gen_range(1..=max);
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < count {
        chosen.insert(rng.gen_range(0..config.n_streams));
    }
    let mut streams: Vec<usize> = chosen.into_iter().collect();
    streams.sort_unstable();
    streams
}

/// SplitMix64 finalizer, used to derive independent per-cell RNG streams
/// from the dataset seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SyntheticDataset {
    /// The generator configuration the dataset was built from.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Map positions of the streams.
    pub fn positions(&self) -> &[Point2D] {
        &self.positions
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.config.n_streams
    }

    /// Timeline length.
    pub fn timeline(&self) -> usize {
        self.config.timeline
    }

    /// The injected ground-truth patterns.
    pub fn patterns(&self) -> &[GroundTruthPattern] {
        &self.patterns
    }

    /// The distinct terms that carry at least one injected pattern, sorted.
    pub fn patterned_terms(&self) -> Vec<usize> {
        let mut terms: Vec<usize> = self.by_term.keys().copied().collect();
        terms.sort_unstable();
        terms
    }

    /// The indices of the patterns injected into `term`.
    pub fn patterns_of_term(&self, term: usize) -> &[usize] {
        self.by_term.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Deterministic exponential background frequency of one cell.
    fn background(&self, term: usize, stream: usize, ts: usize) -> f64 {
        if self.config.background_density < 1.0 {
            // Sparsity gate: whether this (term, stream) pair ever carries
            // background traffic is decided once, independently of ts.
            let gate = splitmix64(
                self.config
                    .seed
                    .wrapping_mul(0xA24BAED4963EE407)
                    .wrapping_add(splitmix64((term as u64) << 32 ^ stream as u64)),
            );
            let u = (gate >> 11) as f64 / (1u64 << 53) as f64;
            if u >= self.config.background_density {
                return 0.0;
            }
        }
        let h = splitmix64(
            self.config
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(splitmix64(
                    (term as u64) << 42 ^ (stream as u64) << 20 ^ ts as u64,
                )),
        );
        // Map to (0, 1) and invert the exponential CDF (mean =
        // `background_mean`), mirroring what [`Exponential::sample`] does but
        // without carrying RNG state per cell.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let u = u.clamp(f64::MIN_POSITIVE, 1.0 - 1e-12);
        -(1.0 - u).ln() * self.config.background_mean
    }

    /// Injected (pattern) frequency of one cell.
    fn injected(&self, term: usize, stream: usize, ts: usize) -> f64 {
        let Some(pattern_ids) = self.by_term.get(&term) else {
            return 0.0;
        };
        let mut total = 0.0;
        for &pid in pattern_ids {
            let p = &self.patterns[pid];
            if !p.interval.contains(ts) {
                continue;
            }
            if let Ok(pos) = p.streams.binary_search(&stream) {
                let offset = ts - p.interval.start;
                total += self.injections[pid][pos][offset];
            }
        }
        total
    }

    /// Frequency of `term` in `stream` at timestamp `ts` (background plus
    /// any injected pattern mass).
    pub fn frequency(&self, term: usize, stream: usize, ts: usize) -> f64 {
        self.background(term, stream, ts) + self.injected(term, stream, ts)
    }

    /// The full frequency series of `term` in `stream`.
    pub fn series(&self, term: usize, stream: usize) -> Vec<f64> {
        (0..self.config.timeline)
            .map(|ts| self.frequency(term, stream, ts))
            .collect()
    }

    /// The frequency of `term` in every stream at timestamp `ts`.
    pub fn snapshot(&self, term: usize, ts: usize) -> Vec<f64> {
        (0..self.config.n_streams)
            .map(|s| self.frequency(term, s, ts))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(selection: StreamSelection) -> GeneratorConfig {
        GeneratorConfig {
            n_streams: 30,
            timeline: 60,
            n_terms: 50,
            n_patterns: 12,
            selection,
            max_streams_per_pattern: 10,
            seed: 99,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        let b = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        assert_eq!(a.patterns(), b.patterns());
        assert_eq!(a.series(3, 7), b.series(3, 7));
    }

    #[test]
    fn requested_number_of_patterns_is_generated() {
        let d = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        assert_eq!(d.patterns().len(), 12);
        assert_eq!(d.n_streams(), 30);
        assert_eq!(d.timeline(), 60);
        assert_eq!(d.positions().len(), 30);
    }

    #[test]
    fn patterns_are_within_bounds() {
        for sel in [
            StreamSelection::RandGen,
            StreamSelection::DistGen {
                decay_fraction: 0.1,
            },
        ] {
            let d = PatternGenerator::generate(small_config(sel));
            for p in d.patterns() {
                assert!(p.term < 50);
                assert!(p.interval.end < 60);
                assert!(!p.streams.is_empty());
                assert!(p.streams.len() <= 10);
                for &s in &p.streams {
                    assert!(s < 30);
                }
                // Streams are sorted and unique.
                for w in p.streams.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }

    #[test]
    fn distgen_patterns_are_spatially_compact() {
        let mut config = small_config(StreamSelection::DistGen {
            decay_fraction: 0.05,
        });
        config.n_streams = 100;
        config.n_patterns = 40;
        config.max_streams_per_pattern = 100;
        let d = PatternGenerator::generate(config.clone());

        let mut rand_config = config;
        rand_config.selection = StreamSelection::RandGen;
        let r = PatternGenerator::generate(rand_config);

        let avg_spread = |ds: &SyntheticDataset| -> f64 {
            let mut total = 0.0;
            let mut count = 0;
            for p in ds.patterns() {
                if p.streams.len() < 2 {
                    continue;
                }
                let pts: Vec<Point2D> = p.streams.iter().map(|&s| ds.positions()[s]).collect();
                let centroid = Point2D::new(
                    pts.iter().map(|q| q.x).sum::<f64>() / pts.len() as f64,
                    pts.iter().map(|q| q.y).sum::<f64>() / pts.len() as f64,
                );
                total += pts.iter().map(|q| q.distance(&centroid)).sum::<f64>() / pts.len() as f64;
                count += 1;
            }
            total / count.max(1) as f64
        };
        // distGen patterns must be markedly more compact than randGen ones.
        assert!(avg_spread(&d) < avg_spread(&r) * 0.6);
    }

    #[test]
    fn injected_mass_appears_inside_the_pattern() {
        let d = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        let p = &d.patterns()[0];
        let stream = p.streams[0];
        let series = d.series(p.term, stream);
        let inside: f64 = (p.interval.start..=p.interval.end).map(|t| series[t]).sum();
        let inside_len = p.interval.len() as f64;
        // "Outside" must be pure background: a term may carry several
        // injected patterns, so timestamps covered by any *other* same-term
        // pattern that also includes this stream are excluded.
        let background_only = |t: usize| {
            !p.interval.contains(t)
                && d.patterns_of_term(p.term).iter().all(|&pid| {
                    let q = &d.patterns()[pid];
                    !q.interval.contains(t) || q.streams.binary_search(&stream).is_err()
                })
        };
        let outside_ts: Vec<usize> = (0..series.len()).filter(|&t| background_only(t)).collect();
        assert!(!outside_ts.is_empty(), "no pure-background timestamps left");
        let outside: f64 = outside_ts.iter().map(|&t| series[t]).sum();
        let outside_len = outside_ts.len() as f64;
        // The average frequency inside the pattern is much larger than the
        // background average outside it.
        assert!(inside / inside_len > 5.0 * (outside / outside_len));
    }

    #[test]
    fn background_is_positive_and_bounded_on_average() {
        let d = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        // A term with no pattern: pure background.
        let term = (0..50).find(|t| d.patterns_of_term(*t).is_empty()).unwrap();
        let series = d.series(term, 5);
        assert!(series.iter().all(|&v| v >= 0.0));
        let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
        assert!(mean > 0.2 && mean < 5.0, "background mean {mean}");
    }

    #[test]
    fn snapshot_matches_series() {
        let d = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        let p = &d.patterns()[0];
        let ts = p.interval.start;
        let snap = d.snapshot(p.term, ts);
        for s in 0..d.n_streams() {
            assert_eq!(snap[s], d.series(p.term, s)[ts]);
        }
    }

    #[test]
    fn patterned_terms_listed() {
        let d = PatternGenerator::generate(small_config(StreamSelection::RandGen));
        let terms = d.patterned_terms();
        assert!(!terms.is_empty());
        for t in &terms {
            assert!(!d.patterns_of_term(*t).is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn zero_streams_panics() {
        let mut c = small_config(StreamSelection::RandGen);
        c.n_streams = 0;
        PatternGenerator::generate(c);
    }
}
