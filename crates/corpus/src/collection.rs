//! Spatiotemporal collections: streams × timestamps × terms.
//!
//! A [`Collection`] is the paper's `D = {D_1[·], ..., D_n[·]}` (Section 2):
//! a fixed set of geostamped document streams observed over a shared
//! discrete timeline. It stores the documents themselves (needed by the
//! search engine) and maintains the per-term frequency tensors the mining
//! algorithms consume:
//!
//! * `D_x[i][t]` — the frequency of term `t` in the documents of stream `x`
//!   at timestamp `i` (Eq. 6), available as per-stream series
//!   ([`Collection::term_stream_series`]) and as per-timestamp snapshots
//!   across streams ([`Collection::term_snapshot`]).
//! * per-stream totals (all terms), used by detectors that need the overall
//!   traffic volume (e.g. the Kleinberg automaton).

use crate::dictionary::{TermDict, TermId};
use crate::document::{DocId, Document};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use stb_geo::{GeoPoint, Point2D};

/// Dense identifier of a stream within a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The stream id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Discrete timestamp (index into the collection's timeline).
pub type Timestamp = usize;

/// Metadata of a document stream: a name, a geostamp, and the planar map
/// position used by the regional mining (typically obtained by projecting
/// the geostamps with MDS).
#[derive(Debug, Clone)]
pub struct StreamMeta {
    /// Identifier of the stream.
    pub id: StreamId,
    /// Human-readable name (e.g. a country or city name).
    pub name: String,
    /// Geographic location of the stream.
    pub geostamp: GeoPoint,
    /// Position of the stream on the planar map.
    pub position: Point2D,
}

/// A per-term snapshot `D[i]` of the collection: the frequency of one term
/// in every stream at a single timestamp.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The timestamp of the snapshot.
    pub timestamp: Timestamp,
    /// Frequency of the term per stream, indexed by [`StreamId::index`].
    pub frequencies: Vec<f64>,
}

/// Sparse per-term storage: for each stream that mentions the term, the
/// (timestamp, frequency) pairs sorted by timestamp.
type TermOccurrences = BTreeMap<StreamId, Vec<(Timestamp, f64)>>;

/// A spatiotemporal document collection.
#[derive(Debug, Clone)]
pub struct Collection {
    dict: TermDict,
    streams: Vec<StreamMeta>,
    timeline_len: usize,
    documents: Vec<Document>,
    term_freqs: HashMap<TermId, TermOccurrences>,
    stream_totals: Vec<Vec<f64>>,
}

impl Collection {
    /// Number of streams `n = |D|`.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Length of the timeline `|L|` (number of timestamps).
    pub fn timeline_len(&self) -> usize {
        self.timeline_len
    }

    /// The term dictionary of the collection.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Metadata of one stream.
    pub fn stream(&self, id: StreamId) -> &StreamMeta {
        &self.streams[id.index()]
    }

    /// Metadata of all streams, indexed by [`StreamId::index`].
    pub fn streams(&self) -> &[StreamMeta] {
        &self.streams
    }

    /// Planar positions of all streams, indexed by [`StreamId::index`].
    pub fn positions(&self) -> Vec<Point2D> {
        self.streams.iter().map(|s| s.position).collect()
    }

    /// All documents of the collection.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// A single document by id.
    pub fn document(&self, id: DocId) -> &Document {
        &self.documents[id.index()]
    }

    /// Iterates over every term that occurs at least once in the collection.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        let mut ids: Vec<TermId> = self.term_freqs.keys().copied().collect();
        ids.sort();
        ids.into_iter()
    }

    /// Number of distinct terms that occur in the collection.
    pub fn n_terms(&self) -> usize {
        self.term_freqs.len()
    }

    /// The streams in which `term` occurs at least once, sorted by id.
    pub fn streams_with_term(&self, term: TermId) -> Vec<StreamId> {
        self.term_freqs
            .get(&term)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Dense frequency series of `term` in `stream` over the whole timeline
    /// (`D_x[·][t]`). Timestamps with no occurrence are zero.
    pub fn term_stream_series(&self, term: TermId, stream: StreamId) -> Vec<f64> {
        let mut series = vec![0.0; self.timeline_len];
        if let Some(per_stream) = self.term_freqs.get(&term) {
            if let Some(entries) = per_stream.get(&stream) {
                for &(ts, f) in entries {
                    if ts < self.timeline_len {
                        series[ts] += f;
                    }
                }
            }
        }
        series
    }

    /// Frequency of `term` in every stream at `timestamp` (`D[i]` restricted
    /// to one term), indexed by [`StreamId::index`].
    pub fn term_snapshot(&self, term: TermId, timestamp: Timestamp) -> Snapshot {
        let mut frequencies = vec![0.0; self.n_streams()];
        if let Some(per_stream) = self.term_freqs.get(&term) {
            for (stream, entries) in per_stream {
                // There is at most one entry per timestamp (the builder
                // aggregates), so a binary search lookup suffices.
                if let Ok(idx) = entries.binary_search_by_key(&timestamp, |e| e.0) {
                    frequencies[stream.index()] = entries[idx].1;
                }
            }
        }
        Snapshot {
            timestamp,
            frequencies,
        }
    }

    /// Aggregated frequency series of `term` over *all* streams merged into
    /// one (used by the temporal-only `TB` baseline of the paper).
    pub fn term_merged_series(&self, term: TermId) -> Vec<f64> {
        let mut series = vec![0.0; self.timeline_len];
        if let Some(per_stream) = self.term_freqs.get(&term) {
            for entries in per_stream.values() {
                for &(ts, f) in entries {
                    if ts < self.timeline_len {
                        series[ts] += f;
                    }
                }
            }
        }
        series
    }

    /// Total term occurrences (all terms) of `stream` per timestamp.
    pub fn stream_total_series(&self, stream: StreamId) -> &[f64] {
        &self.stream_totals[stream.index()]
    }

    /// Total number of term occurrences in the whole collection.
    pub fn total_tokens(&self) -> f64 {
        self.stream_totals.iter().flatten().sum()
    }

    // ------------------------------------------------------------------
    // Live mutation.
    //
    // A built collection is not frozen: the ingest pipeline
    // (`stb-ingest`) appends streams, timeline ticks, and documents after
    // construction, maintaining the same frequency-tensor invariants the
    // batch [`CollectionBuilder`] establishes. A collection mutated
    // through these methods is indistinguishable from one built in a
    // single batch from the same documents (term counts are integral, so
    // the `f64` aggregation is exact in any order).
    // ------------------------------------------------------------------

    /// Mutable access to the term dictionary, so live ingestion can intern
    /// previously-unseen terms after construction.
    pub fn dict_mut(&mut self) -> &mut TermDict {
        &mut self.dict
    }

    /// Registers a new stream after construction, with an explicit planar
    /// position. The new stream has no documents yet; every existing
    /// per-term series simply gains a zero row.
    pub fn add_stream_with_position(
        &mut self,
        name: &str,
        geostamp: GeoPoint,
        position: Point2D,
    ) -> StreamId {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(StreamMeta {
            id,
            name: name.to_string(),
            geostamp,
            position,
        });
        self.stream_totals.push(vec![0.0; self.timeline_len]);
        id
    }

    /// Registers a new stream after construction, deriving its planar
    /// position from the geostamp by equirectangular projection (as
    /// [`CollectionBuilder::add_stream`] does).
    pub fn add_stream(&mut self, name: &str, geostamp: GeoPoint) -> StreamId {
        self.add_stream_with_position(name, geostamp, Point2D::new(geostamp.lon, geostamp.lat))
    }

    /// Grows the timeline to `new_len` timestamps (a no-op if the timeline
    /// is already at least that long). New timestamps hold no documents.
    pub fn extend_timeline(&mut self, new_len: usize) {
        if new_len <= self.timeline_len {
            return;
        }
        for totals in &mut self.stream_totals {
            totals.resize(new_len, 0.0);
        }
        self.timeline_len = new_len;
    }

    /// Appends a document after construction, incrementally updating the
    /// per-term frequency tensors and per-stream totals. Returns the new
    /// document's id (dense, in arrival order — exactly the ids the batch
    /// builder would have assigned).
    ///
    /// # Panics
    ///
    /// Panics if the stream is unknown or the timestamp is outside the
    /// timeline (grow it first with [`Collection::extend_timeline`]).
    pub fn push_document(
        &mut self,
        stream: StreamId,
        timestamp: Timestamp,
        counts: HashMap<TermId, u32>,
    ) -> DocId {
        assert!(stream.index() < self.streams.len(), "unknown stream");
        assert!(timestamp < self.timeline_len, "timestamp beyond timeline");
        let id = DocId(self.documents.len() as u32);
        for (&term, &count) in &counts {
            let entries = self
                .term_freqs
                .entry(term)
                .or_default()
                .entry(stream)
                .or_default();
            // Keep the one-entry-per-timestamp, sorted-by-timestamp
            // invariant the batch builder establishes.
            match entries.binary_search_by_key(&timestamp, |e| e.0) {
                Ok(idx) => entries[idx].1 += count as f64,
                Err(idx) => entries.insert(idx, (timestamp, count as f64)),
            }
            self.stream_totals[stream.index()][timestamp] += count as f64;
        }
        self.documents
            .push(Document::new(id, stream, timestamp, counts));
        id
    }
}

/// One term's exported frequency series: for each stream it occurs in
/// (sorted by id), its `(timestamp, frequency)` entries sorted by
/// timestamp with one entry per timestamp.
pub type TermSeriesParts = Vec<(StreamId, Vec<(Timestamp, f64)>)>;

/// The raw constituent parts of a [`Collection`], exposed for persistence
/// (`stb-store` serializes these, never the private fields directly).
///
/// All orderings are deterministic so two exports of observationally equal
/// collections are equal: terms in id order, streams in id order, tensor
/// entries sorted by term then stream then timestamp, documents in id
/// order. Frequencies carry their exact `f64` bit patterns.
#[derive(Debug, Clone, Default)]
pub struct CollectionParts {
    /// Every interned term string, in [`TermId`] order (including terms
    /// that never occur in a document).
    pub terms: Vec<String>,
    /// Stream metadata, in [`StreamId`] order.
    pub streams: Vec<StreamMeta>,
    /// Length of the timeline.
    pub timeline_len: usize,
    /// Every document, in [`DocId`] order.
    pub documents: Vec<Document>,
    /// The sparse per-term frequency tensor: for each term that occurs,
    /// its per-stream `(timestamp, frequency)` series — terms sorted by
    /// id, streams sorted by id, series sorted by timestamp with one entry
    /// per timestamp.
    pub term_freqs: Vec<(TermId, TermSeriesParts)>,
    /// Per-stream total term occurrences per timestamp, indexed by
    /// [`StreamId::index`]; each inner vector has `timeline_len` entries.
    pub stream_totals: Vec<Vec<f64>>,
}

/// Error returned by [`Collection::from_parts`] when the parts violate a
/// collection invariant (dense ids, tensor/timeline consistency, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartsError {
    detail: String,
}

impl PartsError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }

    /// The violated invariant, human-readable.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl std::fmt::Display for PartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid collection parts: {}", self.detail)
    }
}

impl std::error::Error for PartsError {}

impl Collection {
    /// Decomposes the collection into its serializable [`CollectionParts`]
    /// with fully deterministic ordering.
    pub fn to_parts(&self) -> CollectionParts {
        let terms = self.dict.iter().map(|(_, s)| s.to_string()).collect();
        let mut term_ids: Vec<TermId> = self.term_freqs.keys().copied().collect();
        term_ids.sort();
        let term_freqs = term_ids
            .into_iter()
            .map(|term| {
                let per_stream = self.term_freqs[&term]
                    .iter()
                    .map(|(&stream, entries)| (stream, entries.clone()))
                    .collect();
                (term, per_stream)
            })
            .collect();
        CollectionParts {
            terms,
            streams: self.streams.clone(),
            timeline_len: self.timeline_len,
            documents: self.documents.clone(),
            term_freqs,
            stream_totals: self.stream_totals.clone(),
        }
    }

    /// Reassembles a collection from its parts, validating every structural
    /// invariant (`to_parts` ∘ `from_parts` is the identity). The heavy
    /// per-value content is trusted — persistence layers protect it with a
    /// checksum — but nothing structurally impossible is accepted: ids must
    /// be dense and in range, tensor series sorted with one entry per
    /// timestamp, and totals sized to the timeline.
    pub fn from_parts(parts: CollectionParts) -> Result<Self, PartsError> {
        let n_streams = parts.streams.len();
        let n_terms = parts.terms.len();
        for (i, meta) in parts.streams.iter().enumerate() {
            if meta.id.index() != i {
                return Err(PartsError::new(format!(
                    "stream {i} has non-dense id {:?}",
                    meta.id
                )));
            }
        }
        if parts.stream_totals.len() != n_streams {
            return Err(PartsError::new(format!(
                "{} stream-total series for {n_streams} streams",
                parts.stream_totals.len()
            )));
        }
        for (i, totals) in parts.stream_totals.iter().enumerate() {
            if totals.len() != parts.timeline_len {
                return Err(PartsError::new(format!(
                    "stream {i} totals cover {} timestamps of a {}-long timeline",
                    totals.len(),
                    parts.timeline_len
                )));
            }
        }
        let mut dict = TermDict::new();
        for term in &parts.terms {
            dict.intern(term);
        }
        if dict.len() != n_terms {
            return Err(PartsError::new("duplicate term strings in dictionary"));
        }
        for (i, doc) in parts.documents.iter().enumerate() {
            if doc.id.index() != i {
                return Err(PartsError::new(format!(
                    "document {i} has non-dense id {:?}",
                    doc.id
                )));
            }
            if doc.stream.index() >= n_streams {
                return Err(PartsError::new(format!(
                    "document {i} references unknown stream {:?}",
                    doc.stream
                )));
            }
            if doc.timestamp >= parts.timeline_len {
                return Err(PartsError::new(format!(
                    "document {i} at timestamp {} beyond timeline {}",
                    doc.timestamp, parts.timeline_len
                )));
            }
            if let Some(&term) = doc.counts.keys().find(|t| t.index() >= n_terms) {
                return Err(PartsError::new(format!(
                    "document {i} references unknown term {term:?}"
                )));
            }
        }
        let mut term_freqs: HashMap<TermId, TermOccurrences> = HashMap::new();
        for (term, per_stream) in parts.term_freqs {
            if term.index() >= n_terms {
                return Err(PartsError::new(format!(
                    "tensor entry for unknown {term:?}"
                )));
            }
            let mut occurrences = TermOccurrences::new();
            for (stream, entries) in per_stream {
                if stream.index() >= n_streams {
                    return Err(PartsError::new(format!(
                        "tensor entry for {term:?} references unknown {stream:?}"
                    )));
                }
                let sorted = entries.windows(2).all(|w| w[0].0 < w[1].0);
                if !sorted {
                    return Err(PartsError::new(format!(
                        "tensor series of {term:?}/{stream:?} is not strictly \
                         sorted by timestamp"
                    )));
                }
                if entries.last().is_some_and(|e| e.0 >= parts.timeline_len) {
                    return Err(PartsError::new(format!(
                        "tensor series of {term:?}/{stream:?} runs past the timeline"
                    )));
                }
                occurrences.insert(stream, entries);
            }
            if term_freqs.insert(term, occurrences).is_some() {
                return Err(PartsError::new(format!(
                    "duplicate tensor entry for {term:?}"
                )));
            }
        }
        Ok(Collection {
            dict,
            streams: parts.streams,
            timeline_len: parts.timeline_len,
            documents: parts.documents,
            term_freqs,
            stream_totals: parts.stream_totals,
        })
    }
}

impl From<&Collection> for Arc<Collection> {
    /// Clones the collection into a fresh shared handle. This keeps
    /// pre-ownership call sites (`BurstySearchEngine::new(&collection, …)`)
    /// working; callers that share one collection across engines or with an
    /// ingest pipeline should build the `Arc` once and clone the handle.
    fn from(collection: &Collection) -> Self {
        Arc::new(collection.clone())
    }
}

/// Incremental builder of a [`Collection`].
#[derive(Debug, Clone)]
pub struct CollectionBuilder {
    dict: TermDict,
    streams: Vec<StreamMeta>,
    timeline_len: usize,
    documents: Vec<Document>,
}

impl CollectionBuilder {
    /// Creates a builder for a collection with the given timeline length.
    pub fn new(timeline_len: usize) -> Self {
        Self {
            dict: TermDict::new(),
            streams: Vec::new(),
            timeline_len,
            documents: Vec::new(),
        }
    }

    /// Mutable access to the term dictionary (for interning query terms or
    /// generator vocabularies up front).
    pub fn dict_mut(&mut self) -> &mut TermDict {
        &mut self.dict
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Registers a stream with an explicit planar position.
    pub fn add_stream_with_position(
        &mut self,
        name: &str,
        geostamp: GeoPoint,
        position: Point2D,
    ) -> StreamId {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(StreamMeta {
            id,
            name: name.to_string(),
            geostamp,
            position,
        });
        id
    }

    /// Registers a stream whose planar position will be derived from its
    /// geostamp by equirectangular projection (longitude → x, latitude → y).
    ///
    /// For a projection that better preserves pairwise distances, compute an
    /// MDS embedding with [`stb_geo::classical_mds`] and use
    /// [`CollectionBuilder::add_stream_with_position`].
    pub fn add_stream(&mut self, name: &str, geostamp: GeoPoint) -> StreamId {
        self.add_stream_with_position(name, geostamp, Point2D::new(geostamp.lon, geostamp.lat))
    }

    /// Number of streams registered so far.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Adds a document given its term-frequency bag.
    ///
    /// # Panics
    ///
    /// Panics if the stream is unknown or the timestamp is outside the
    /// timeline.
    pub fn add_document(
        &mut self,
        stream: StreamId,
        timestamp: Timestamp,
        counts: HashMap<TermId, u32>,
    ) -> DocId {
        assert!(stream.index() < self.streams.len(), "unknown stream");
        assert!(timestamp < self.timeline_len, "timestamp beyond timeline");
        let id = DocId(self.documents.len() as u32);
        self.documents
            .push(Document::new(id, stream, timestamp, counts));
        id
    }

    /// Adds a document given its raw text, tokenizing with `tokenizer`.
    pub fn add_text_document(
        &mut self,
        stream: StreamId,
        timestamp: Timestamp,
        text: &str,
        tokenizer: &crate::tokenizer::Tokenizer,
    ) -> DocId {
        let counts = tokenizer.term_counts(text, &mut self.dict);
        self.add_document(stream, timestamp, counts)
    }

    /// Finalizes the collection, computing the per-term frequency tensors.
    pub fn build(self) -> Collection {
        let mut term_freqs: HashMap<TermId, TermOccurrences> = HashMap::new();
        let mut stream_totals = vec![vec![0.0; self.timeline_len]; self.streams.len()];
        // Aggregate per (term, stream, timestamp).
        let mut agg: HashMap<(TermId, StreamId, Timestamp), f64> = HashMap::new();
        for doc in &self.documents {
            for (&term, &count) in &doc.counts {
                *agg.entry((term, doc.stream, doc.timestamp)).or_insert(0.0) += count as f64;
                stream_totals[doc.stream.index()][doc.timestamp] += count as f64;
            }
        }
        for ((term, stream, ts), freq) in agg {
            term_freqs
                .entry(term)
                .or_default()
                .entry(stream)
                .or_default()
                .push((ts, freq));
        }
        for per_stream in term_freqs.values_mut() {
            for entries in per_stream.values_mut() {
                entries.sort_by_key(|e| e.0);
            }
        }
        Collection {
            dict: self.dict,
            streams: self.streams,
            timeline_len: self.timeline_len,
            documents: self.documents,
            term_freqs,
            stream_totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn build_sample() -> Collection {
        let mut b = CollectionBuilder::new(5);
        let tok = Tokenizer::new();
        let s0 = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
        let s1 = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
        b.add_text_document(s0, 0, "earthquake earthquake damage", &tok);
        b.add_text_document(s0, 2, "earthquake relief", &tok);
        b.add_text_document(s1, 2, "earthquake Fujimori trial", &tok);
        b.add_text_document(s1, 3, "Fujimori sentenced", &tok);
        b.build()
    }

    #[test]
    fn dimensions() {
        let c = build_sample();
        assert_eq!(c.n_streams(), 2);
        assert_eq!(c.timeline_len(), 5);
        assert_eq!(c.documents().len(), 4);
        assert!(c.n_terms() >= 5);
    }

    #[test]
    fn term_stream_series_is_dense() {
        let c = build_sample();
        let quake = c.dict().get("earthquake").unwrap();
        let series = c.term_stream_series(quake, StreamId(0));
        assert_eq!(series, vec![2.0, 0.0, 1.0, 0.0, 0.0]);
        let series1 = c.term_stream_series(quake, StreamId(1));
        assert_eq!(series1, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn term_snapshot_across_streams() {
        let c = build_sample();
        let quake = c.dict().get("earthquake").unwrap();
        let snap = c.term_snapshot(quake, 2);
        assert_eq!(snap.frequencies, vec![1.0, 1.0]);
        let snap0 = c.term_snapshot(quake, 0);
        assert_eq!(snap0.frequencies, vec![2.0, 0.0]);
    }

    #[test]
    fn merged_series_sums_streams() {
        let c = build_sample();
        let quake = c.dict().get("earthquake").unwrap();
        assert_eq!(c.term_merged_series(quake), vec![2.0, 0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn streams_with_term() {
        let c = build_sample();
        let fuji = c.dict().get("fujimori").unwrap();
        assert_eq!(c.streams_with_term(fuji), vec![StreamId(1)]);
        let quake = c.dict().get("earthquake").unwrap();
        assert_eq!(c.streams_with_term(quake), vec![StreamId(0), StreamId(1)]);
    }

    #[test]
    fn stream_totals() {
        let c = build_sample();
        // Athens: t0 has 3 tokens, t2 has 2 tokens.
        let totals = c.stream_total_series(StreamId(0));
        assert_eq!(totals[0], 3.0);
        assert_eq!(totals[2], 2.0);
        assert_eq!(c.total_tokens(), 10.0);
    }

    #[test]
    fn unknown_term_has_empty_series() {
        let c = build_sample();
        let unknown = TermId(9999);
        assert_eq!(c.term_stream_series(unknown, StreamId(0)), vec![0.0; 5]);
        assert!(c.streams_with_term(unknown).is_empty());
    }

    #[test]
    fn document_lookup() {
        let c = build_sample();
        let d = c.document(DocId(0));
        assert_eq!(d.stream, StreamId(0));
        assert_eq!(d.timestamp, 0);
    }

    #[test]
    #[should_panic]
    fn timestamp_out_of_range_panics() {
        let mut b = CollectionBuilder::new(3);
        let s = b.add_stream("X", GeoPoint::new(0.0, 0.0));
        b.add_document(s, 3, HashMap::new());
    }

    #[test]
    #[should_panic]
    fn unknown_stream_panics() {
        let mut b = CollectionBuilder::new(3);
        b.add_document(StreamId(0), 0, HashMap::new());
    }

    #[test]
    fn terms_iterator_sorted() {
        let c = build_sample();
        let terms: Vec<_> = c.terms().collect();
        let mut sorted = terms.clone();
        sorted.sort();
        assert_eq!(terms, sorted);
    }

    /// A document plan: (stream index, timestamp, [(term index, count)]).
    type DocPlan = (usize, Timestamp, Vec<(usize, u32)>);

    /// Applies the same plan once through the batch builder and once through
    /// post-build mutation, and asserts the two collections are
    /// observationally identical.
    fn assert_incremental_matches_batch(plan: &[DocPlan], timeline: usize, n_streams: usize) {
        let terms = ["alpha", "beta", "gamma", "delta"];
        let mut batch = CollectionBuilder::new(timeline);
        let mut live = CollectionBuilder::new(timeline).build();
        for s in 0..n_streams {
            let geo = GeoPoint::new(s as f64, -(s as f64));
            batch.add_stream(&format!("s{s}"), geo);
            live.add_stream(&format!("s{s}"), geo);
        }
        for &(stream, ts, ref bag) in plan {
            let mut batch_counts = HashMap::new();
            let mut live_counts = HashMap::new();
            for &(t, count) in bag {
                let b_id = batch.dict_mut().intern(terms[t]);
                let l_id = live.dict_mut().intern(terms[t]);
                assert_eq!(b_id, l_id, "interning order must agree");
                *batch_counts.entry(b_id).or_insert(0) += count;
                *live_counts.entry(l_id).or_insert(0) += count;
            }
            batch.add_document(StreamId(stream as u32), ts, batch_counts);
            live.push_document(StreamId(stream as u32), ts, live_counts);
        }
        let batch = batch.build();

        assert_eq!(batch.n_streams(), live.n_streams());
        assert_eq!(batch.timeline_len(), live.timeline_len());
        assert_eq!(batch.documents().len(), live.documents().len());
        assert_eq!(batch.n_terms(), live.n_terms());
        assert_eq!(batch.total_tokens(), live.total_tokens());
        let term_ids: Vec<TermId> = batch.terms().collect();
        assert_eq!(term_ids, live.terms().collect::<Vec<_>>());
        for &term in &term_ids {
            assert_eq!(batch.streams_with_term(term), live.streams_with_term(term));
            for s in 0..n_streams {
                assert_eq!(
                    batch.term_stream_series(term, StreamId(s as u32)),
                    live.term_stream_series(term, StreamId(s as u32))
                );
            }
            for ts in 0..timeline {
                assert_eq!(
                    batch.term_snapshot(term, ts).frequencies,
                    live.term_snapshot(term, ts).frequencies
                );
            }
        }
        for s in 0..n_streams {
            assert_eq!(
                batch.stream_total_series(StreamId(s as u32)),
                live.stream_total_series(StreamId(s as u32))
            );
        }
    }

    #[test]
    fn push_document_matches_batch_builder() {
        let plan: Vec<DocPlan> = vec![
            (0, 0, vec![(0, 2), (1, 1)]),
            (1, 0, vec![(0, 3)]),
            (0, 2, vec![(2, 5), (0, 1)]),
            (0, 2, vec![(0, 4)]), // same (term, stream, ts) twice: aggregates
            (1, 4, vec![(3, 1), (1, 2), (0, 1)]),
            (0, 1, vec![(1, 7)]), // out-of-timestamp-order arrival
        ];
        assert_incremental_matches_batch(&plan, 5, 2);
    }

    #[test]
    fn add_stream_after_build_starts_empty() {
        let mut c = build_sample();
        let n = c.n_streams();
        let s = c.add_stream("Tokyo", GeoPoint::new(35.7, 139.7));
        assert_eq!(s.index(), n);
        assert_eq!(c.n_streams(), n + 1);
        assert_eq!(c.stream(s).name, "Tokyo");
        assert_eq!(
            c.stream_total_series(s),
            vec![0.0; c.timeline_len()].as_slice()
        );
        let quake = c.dict().get("earthquake").unwrap();
        assert_eq!(c.term_snapshot(quake, 2).frequencies.len(), n + 1);
        // And it can receive documents right away.
        let mut counts = HashMap::new();
        counts.insert(quake, 2);
        c.push_document(s, 1, counts);
        assert_eq!(c.term_stream_series(quake, s)[1], 2.0);
    }

    #[test]
    fn extend_timeline_grows_with_zeros() {
        let mut c = build_sample();
        let quake = c.dict().get("earthquake").unwrap();
        let before = c.term_merged_series(quake);
        c.extend_timeline(8);
        assert_eq!(c.timeline_len(), 8);
        let after = c.term_merged_series(quake);
        assert_eq!(&after[..before.len()], before.as_slice());
        assert_eq!(&after[before.len()..], &[0.0, 0.0, 0.0]);
        assert_eq!(c.stream_total_series(StreamId(0)).len(), 8);
        // Shrinking is a no-op.
        c.extend_timeline(3);
        assert_eq!(c.timeline_len(), 8);
        // The grown tick accepts documents.
        let mut counts = HashMap::new();
        counts.insert(quake, 1);
        c.push_document(StreamId(0), 7, counts);
        assert_eq!(c.term_merged_series(quake)[7], 1.0);
    }

    #[test]
    fn new_term_after_build_is_queryable() {
        let mut c = build_sample();
        let tsunami = c.dict_mut().intern("tsunami");
        assert!(c
            .term_stream_series(tsunami, StreamId(0))
            .iter()
            .all(|&f| f == 0.0));
        let mut counts = HashMap::new();
        counts.insert(tsunami, 3);
        c.push_document(StreamId(1), 4, counts);
        assert_eq!(c.streams_with_term(tsunami), vec![StreamId(1)]);
        assert_eq!(c.term_stream_series(tsunami, StreamId(1))[4], 3.0);
    }

    #[test]
    #[should_panic(expected = "timestamp beyond timeline")]
    fn push_document_rejects_out_of_timeline() {
        let mut c = build_sample();
        c.push_document(StreamId(0), 99, HashMap::new());
    }

    #[test]
    fn parts_round_trip_is_identity() {
        let c = build_sample();
        let parts = c.to_parts();
        let back = Collection::from_parts(parts).expect("valid parts");
        assert_eq!(c.n_streams(), back.n_streams());
        assert_eq!(c.timeline_len(), back.timeline_len());
        assert_eq!(c.documents().len(), back.documents().len());
        assert_eq!(c.n_terms(), back.n_terms());
        for (term, name) in c.dict().iter() {
            assert_eq!(back.dict().resolve(term), Some(name));
            assert_eq!(c.term_merged_series(term), back.term_merged_series(term));
            for s in 0..c.n_streams() {
                assert_eq!(
                    c.term_stream_series(term, StreamId(s as u32)),
                    back.term_stream_series(term, StreamId(s as u32))
                );
            }
        }
        for s in 0..c.n_streams() {
            assert_eq!(
                c.stream_total_series(StreamId(s as u32)),
                back.stream_total_series(StreamId(s as u32))
            );
        }
        for (a, b) in c.documents().iter().zip(back.documents()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.counts, b.counts);
        }
    }

    #[test]
    fn empty_collection_parts_round_trip() {
        let c = CollectionBuilder::new(0).build();
        let back = Collection::from_parts(c.to_parts()).expect("empty parts");
        assert_eq!(back.n_streams(), 0);
        assert_eq!(back.timeline_len(), 0);
        assert_eq!(back.documents().len(), 0);
        assert_eq!(back.n_terms(), 0);
    }

    #[test]
    fn from_parts_rejects_structural_nonsense() {
        let c = build_sample();
        // Dangling document stream.
        let mut parts = c.to_parts();
        parts.documents[0].stream = StreamId(99);
        assert!(Collection::from_parts(parts).is_err());
        // Totals shorter than the timeline.
        let mut parts = c.to_parts();
        parts.stream_totals[0].pop();
        assert!(Collection::from_parts(parts).is_err());
        // Tensor series out of order.
        let mut parts = c.to_parts();
        parts.term_freqs[0].1[0].1.reverse();
        if parts.term_freqs[0].1[0].1.len() >= 2 {
            assert!(Collection::from_parts(parts).is_err());
        }
        // Duplicate dictionary strings.
        let mut parts = c.to_parts();
        let first = parts.terms[0].clone();
        parts.terms.push(first);
        assert!(Collection::from_parts(parts).is_err());
        // Non-dense stream ids.
        let mut parts = c.to_parts();
        parts.streams[0].id = StreamId(7);
        assert!(Collection::from_parts(parts).is_err());
    }

    #[test]
    fn arc_from_reference_clones() {
        let c = build_sample();
        let arc: Arc<Collection> = (&c).into();
        assert_eq!(arc.n_streams(), c.n_streams());
        assert_eq!(arc.documents().len(), c.documents().len());
    }
}
