//! Documents: the atomic items of a stream.

use crate::collection::{StreamId, Timestamp};
use crate::dictionary::TermId;
use std::collections::HashMap;

/// Dense identifier of a document within a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The document id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A document: where and when it appeared, and its bag of terms.
///
/// A document belongs to exactly one stream (its place of origin) and one
/// timestamp — this is what lets the search engine decide whether a document
/// *overlaps* a spatiotemporal pattern (Section 5 of the paper).
#[derive(Debug, Clone)]
pub struct Document {
    /// Identifier of the document within its collection.
    pub id: DocId,
    /// Stream (location) the document was reported from.
    pub stream: StreamId,
    /// Timestamp at which the document was reported.
    pub timestamp: Timestamp,
    /// Term frequency bag: `freq(t, d)` for every term appearing in `d`.
    pub counts: HashMap<TermId, u32>,
}

impl Document {
    /// Creates a document from its parts.
    pub fn new(
        id: DocId,
        stream: StreamId,
        timestamp: Timestamp,
        counts: HashMap<TermId, u32>,
    ) -> Self {
        Self {
            id,
            stream,
            timestamp,
            counts,
        }
    }

    /// Frequency of the term `t` in the document (`freq(t, d)`), zero if the
    /// term does not appear.
    pub fn freq(&self, t: TermId) -> u32 {
        self.counts.get(&t).copied().unwrap_or(0)
    }

    /// Total number of term occurrences in the document.
    pub fn token_count(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Number of distinct terms in the document.
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Whether the document contains the term at least once.
    pub fn contains(&self, t: TermId) -> bool {
        self.counts.contains_key(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Document {
        let mut counts = HashMap::new();
        counts.insert(TermId(0), 3);
        counts.insert(TermId(5), 1);
        Document::new(DocId(7), StreamId(2), 4, counts)
    }

    #[test]
    fn freq_lookup() {
        let d = sample_doc();
        assert_eq!(d.freq(TermId(0)), 3);
        assert_eq!(d.freq(TermId(5)), 1);
        assert_eq!(d.freq(TermId(9)), 0);
    }

    #[test]
    fn token_and_term_counts() {
        let d = sample_doc();
        assert_eq!(d.token_count(), 4);
        assert_eq!(d.distinct_terms(), 2);
    }

    #[test]
    fn contains_terms() {
        let d = sample_doc();
        assert!(d.contains(TermId(0)));
        assert!(!d.contains(TermId(1)));
    }

    #[test]
    fn ids_index() {
        assert_eq!(DocId(3).index(), 3);
    }
}
