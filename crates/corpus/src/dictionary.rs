//! Term interning.
//!
//! Every term string is mapped to a dense [`TermId`] so the mining
//! algorithms can use vectors and small hash maps keyed by integers instead
//! of strings. The mapping is append-only and stable for the lifetime of the
//! dictionary.

use std::collections::HashMap;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The term id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only interning dictionary between term strings and [`TermId`]s.
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    terms: Vec<String>,
    index: HashMap<String, TermId>,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id. Repeated calls with the same string
    /// return the same id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string of an interned term.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all `(TermId, term)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern("earthquake");
        let b = d.intern("earthquake");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = TermDict::new();
        let a = d.intern("a");
        let b = d.intern("b");
        let c = d.intern("c");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = TermDict::new();
        let id = d.intern("piracy");
        assert_eq!(d.resolve(id), Some("piracy"));
        assert_eq!(d.get("piracy"), Some(id));
        assert_eq!(d.get("unknown"), None);
        assert_eq!(d.resolve(TermId(99)), None);
    }

    #[test]
    fn is_case_sensitive() {
        let mut d = TermDict::new();
        let a = d.intern("Obama");
        let b = d.intern("obama");
        assert_ne!(a, b);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut d = TermDict::new();
        d.intern("x");
        d.intern("y");
        let items: Vec<_> = d
            .iter()
            .map(|(id, s)| (id.index(), s.to_string()))
            .collect();
        assert_eq!(items, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn empty_dict() {
        let d = TermDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
