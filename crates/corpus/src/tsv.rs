//! Minimal tab-separated persistence for collections.
//!
//! The format is intentionally simple and dependency-free: one file, three
//! record types distinguished by their first column.
//!
//! ```text
//! C   <timeline_len>
//! S   <stream_id> <name> <lat> <lon> <x> <y>
//! D   <stream_id> <timestamp> <term>:<count> <term>:<count> ...
//! ```
//!
//! Term strings must not contain tabs or colons; the writer replaces both
//! with spaces. This is sufficient for checkpointing synthetic corpora and
//! for shipping small example datasets with the repository.
//!
//! Two readers share the same parser:
//!
//! * [`read_collection`] — the batch loader: consumes the whole file and
//!   builds a [`Collection`] (documents may reference streams declared later
//!   in the file).
//! * [`TsvStreamReader`] — the streaming/append-mode reader: after the `C`
//!   header, yields one [`TsvRecord`] at a time, so a live consumer (the
//!   `stb-ingest` replay driver) can feed a corpus tick-by-tick without
//!   materializing it, and new `S` records may appear interleaved with
//!   documents as streams come online.

use crate::collection::{Collection, CollectionBuilder, StreamId};
use crate::dictionary::TermId;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

use stb_geo::{GeoPoint, Point2D};

/// Errors produced while reading a TSV collection.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with the 1-based line number and a description.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "i/o error: {e}"),
            TsvError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e)
    }
}

fn sanitize(term: &str) -> String {
    term.replace(['\t', ':', '\n'], " ")
}

/// Writes a collection in the TSV format described in the module docs.
pub fn write_collection<W: Write>(collection: &Collection, mut out: W) -> Result<(), TsvError> {
    writeln!(out, "C\t{}", collection.timeline_len())?;
    for s in collection.streams() {
        writeln!(
            out,
            "S\t{}\t{}\t{}\t{}\t{}\t{}",
            s.id.0,
            sanitize(&s.name),
            s.geostamp.lat,
            s.geostamp.lon,
            s.position.x,
            s.position.y
        )?;
    }
    for d in collection.documents() {
        write!(out, "D\t{}\t{}", d.stream.0, d.timestamp)?;
        let mut terms: Vec<(&TermId, &u32)> = d.counts.iter().collect();
        terms.sort_by_key(|(t, _)| **t);
        for (term, count) in terms {
            let name = collection
                .dict()
                .resolve(*term)
                .map(sanitize)
                .unwrap_or_else(|| format!("term{}", term.0));
            write!(out, "\t{name}:{count}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// A `D` record as parsed from the file: the externally-assigned stream id,
/// the timestamp, and the (term string, count) pairs in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDocument {
    /// External stream id (the first field of the originating `S` record).
    pub stream: u32,
    /// Timestamp of the document.
    pub timestamp: usize,
    /// The document's (term, count) pairs, in file order.
    pub counts: Vec<(String, u32)>,
}

/// One record yielded by [`TsvStreamReader`] (everything after the `C`
/// header).
#[derive(Debug, Clone, PartialEq)]
pub enum TsvRecord {
    /// An `S` record: a stream coming online.
    Stream {
        /// Externally-assigned stream id, referenced by `D` records.
        ext_id: u32,
        /// Human-readable stream name.
        name: String,
        /// Geographic location of the stream.
        geostamp: GeoPoint,
        /// Planar map position of the stream.
        position: Point2D,
    },
    /// A `D` record: a document.
    Document(RawDocument),
}

/// Streaming/append-mode reader of the TSV collection format.
///
/// [`TsvStreamReader::new`] consumes the `C` header (the first non-empty
/// line); the reader is then an iterator of [`TsvRecord`]s, in file order,
/// without buffering the corpus. `S` records may appear anywhere after the
/// header, so an append-mode producer can declare new streams as they come
/// online. Consumers that need the batch semantics (documents may reference
/// streams declared *later*) should use [`read_collection`], which is built
/// on this reader.
///
/// ```
/// use stb_corpus::tsv::{TsvRecord, TsvStreamReader};
/// use std::io::Cursor;
///
/// let data = "C\t3\nS\t0\tAthens\t38.0\t23.7\t23.7\t38.0\nD\t0\t1\tquake:2\n";
/// let mut reader = TsvStreamReader::new(Cursor::new(data)).unwrap();
/// assert_eq!(reader.timeline_len(), 3);
/// assert!(matches!(reader.next().unwrap().unwrap(), TsvRecord::Stream { .. }));
/// match reader.next().unwrap().unwrap() {
///     TsvRecord::Document(doc) => assert_eq!(doc.counts, vec![("quake".to_string(), 2)]),
///     other => panic!("expected a document, got {other:?}"),
/// }
/// assert!(reader.next().is_none());
/// ```
#[derive(Debug)]
pub struct TsvStreamReader<R: BufRead> {
    lines: std::io::Lines<R>,
    lineno: usize,
    timeline_len: usize,
}

impl<R: BufRead> TsvStreamReader<R> {
    /// Opens the stream and parses the `C` header record.
    pub fn new(input: R) -> Result<Self, TsvError> {
        let mut lines = input.lines();
        let mut lineno = 0;
        loop {
            let Some(line) = lines.next() else {
                return Err(TsvError::Parse {
                    line: 0,
                    message: "missing C record".to_string(),
                });
            };
            let line = line?;
            lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields[0] != "C" {
                return Err(TsvError::Parse {
                    line: lineno,
                    message: format!("{} record before C record", fields[0]),
                });
            }
            let timeline_len =
                fields
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or(TsvError::Parse {
                        line: lineno,
                        message: "invalid timeline length".to_string(),
                    })?;
            return Ok(Self {
                lines,
                lineno,
                timeline_len,
            });
        }
    }

    /// The timeline length declared by the `C` header.
    pub fn timeline_len(&self) -> usize {
        self.timeline_len
    }

    /// 1-based line number of the last record read (for error reporting).
    pub fn line(&self) -> usize {
        self.lineno
    }

    fn parse_record(&self, line: &str) -> Result<TsvRecord, TsvError> {
        let fields: Vec<&str> = line.split('\t').collect();
        let err = |message: String| TsvError::Parse {
            line: self.lineno,
            message,
        };
        match fields[0] {
            "S" => {
                if fields.len() < 7 {
                    return Err(err("S record needs 7 fields".to_string()));
                }
                let ext_id: u32 = fields[1]
                    .parse()
                    .map_err(|_| err("invalid stream id".to_string()))?;
                let lat: f64 = fields[3]
                    .parse()
                    .map_err(|_| err("invalid latitude".to_string()))?;
                let lon: f64 = fields[4]
                    .parse()
                    .map_err(|_| err("invalid longitude".to_string()))?;
                let x: f64 = fields[5]
                    .parse()
                    .map_err(|_| err("invalid x".to_string()))?;
                let y: f64 = fields[6]
                    .parse()
                    .map_err(|_| err("invalid y".to_string()))?;
                Ok(TsvRecord::Stream {
                    ext_id,
                    name: fields[2].to_string(),
                    geostamp: GeoPoint::new(lat, lon),
                    position: Point2D::new(x, y),
                })
            }
            "D" => {
                if fields.len() < 3 {
                    return Err(err("D record needs at least 3 fields".to_string()));
                }
                let stream: u32 = fields[1]
                    .parse()
                    .map_err(|_| err("invalid stream id".to_string()))?;
                let timestamp: usize = fields[2]
                    .parse()
                    .map_err(|_| err("invalid timestamp".to_string()))?;
                if timestamp >= self.timeline_len {
                    return Err(err("timestamp beyond timeline".to_string()));
                }
                let mut counts = Vec::new();
                for field in &fields[3..] {
                    let (term, count) = field
                        .rsplit_once(':')
                        .ok_or_else(|| err("term field missing ':'".to_string()))?;
                    let count: u32 = count
                        .parse()
                        .map_err(|_| err("invalid term count".to_string()))?;
                    counts.push((term.to_string(), count));
                }
                Ok(TsvRecord::Document(RawDocument {
                    stream,
                    timestamp,
                    counts,
                }))
            }
            "C" => Err(err("duplicate C record".to_string())),
            other => Err(err(format!("unknown record type '{other}'"))),
        }
    }
}

impl<R: BufRead> Iterator for TsvStreamReader<R> {
    type Item = Result<TsvRecord, TsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(e.into())),
            };
            self.lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(self.parse_record(&line));
        }
    }
}

/// Reads a collection previously written by [`write_collection`].
///
/// Batch semantics on top of [`TsvStreamReader`]: the whole file is
/// consumed first, so documents may reference streams declared later in the
/// file; term interning happens in document order, matching the ids a
/// tick-by-tick replay of the same file would assign.
pub fn read_collection<R: BufRead>(input: R) -> Result<Collection, TsvError> {
    let mut reader = TsvStreamReader::new(input)?;
    let mut builder = CollectionBuilder::new(reader.timeline_len());
    let mut stream_map: HashMap<u32, StreamId> = HashMap::new();
    let mut pending_docs: Vec<RawDocument> = Vec::new();

    for record in reader.by_ref() {
        match record? {
            TsvRecord::Stream {
                ext_id,
                name,
                geostamp,
                position,
            } => {
                let id = builder.add_stream_with_position(&name, geostamp, position);
                stream_map.insert(ext_id, id);
            }
            TsvRecord::Document(doc) => pending_docs.push(doc),
        }
    }

    for doc in pending_docs {
        let stream = *stream_map.get(&doc.stream).ok_or(TsvError::Parse {
            line: 0,
            message: format!("document references unknown stream {}", doc.stream),
        })?;
        let mut bag = HashMap::new();
        for (term, count) in doc.counts {
            let id = builder.dict_mut().intern(&term);
            *bag.entry(id).or_insert(0) += count;
        }
        builder.add_document(stream, doc.timestamp, bag);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;
    use std::io::Cursor;

    fn sample() -> Collection {
        let mut b = CollectionBuilder::new(4);
        let tok = Tokenizer::new();
        let s0 = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
        let s1 = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
        b.add_text_document(s0, 0, "ceasefire announced today", &tok);
        b.add_text_document(s1, 3, "piracy piracy somalia", &tok);
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = sample();
        let mut buf = Vec::new();
        write_collection(&original, &mut buf).unwrap();
        let restored = read_collection(Cursor::new(buf)).unwrap();

        assert_eq!(restored.n_streams(), original.n_streams());
        assert_eq!(restored.timeline_len(), original.timeline_len());
        assert_eq!(restored.documents().len(), original.documents().len());
        assert_eq!(restored.n_terms(), original.n_terms());

        let piracy_orig = original.dict().get("piracy").unwrap();
        let piracy_rest = restored.dict().get("piracy").unwrap();
        assert_eq!(
            original.term_merged_series(piracy_orig),
            restored.term_merged_series(piracy_rest)
        );
        assert_eq!(restored.stream(StreamId(0)).name, "Athens");
        assert!((restored.stream(StreamId(1)).geostamp.lon - -77.0).abs() < 1e-9);
    }

    #[test]
    fn serialize_parse_serialize_is_a_fixpoint() {
        // After one round trip the text form must be stable byte-for-byte:
        // writer output is deterministic (sorted term ids, fixed field
        // order), so a second round trip cannot drift.
        let original = sample();
        let mut first = Vec::new();
        write_collection(&original, &mut first).unwrap();
        let restored = read_collection(Cursor::new(first.clone())).unwrap();
        let mut second = Vec::new();
        write_collection(&restored, &mut second).unwrap();
        assert_eq!(
            String::from_utf8(first).unwrap(),
            String::from_utf8(second).unwrap()
        );
    }

    #[test]
    fn round_trip_sanitizes_hostile_term_and_stream_names() {
        let mut b = CollectionBuilder::new(2);
        let s = b.add_stream("Tab\tCity", GeoPoint::new(1.0, 2.0));
        let weird = b.dict_mut().intern("a:b\tc");
        let plain = b.dict_mut().intern("plain");
        let mut counts = HashMap::new();
        counts.insert(weird, 3);
        counts.insert(plain, 1);
        b.add_document(s, 0, counts);
        let original = b.build();

        let mut buf = Vec::new();
        write_collection(&original, &mut buf).unwrap();
        let restored = read_collection(Cursor::new(buf)).unwrap();
        assert_eq!(restored.documents().len(), 1);
        // The hostile separators were replaced by spaces but the term count
        // survives under the sanitized name.
        let sanitized = restored.dict().get("a b c").unwrap();
        assert_eq!(restored.documents()[0].counts.get(&sanitized), Some(&3));
        assert_eq!(restored.stream(StreamId(0)).name, "Tab City");
    }

    #[test]
    fn rejects_malformed_term_count() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tfoo:bar\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
        let missing_colon = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tfoo\n";
        assert!(read_collection(Cursor::new(missing_colon)).is_err());
    }

    #[test]
    fn rejects_document_for_unknown_stream() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t9\t0\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let bad = "X\tfoo\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_document_before_header() {
        let bad = "D\t0\t0\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_timestamp_beyond_timeline() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t5\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_missing_header() {
        let bad = "";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn sanitize_strips_separators() {
        assert_eq!(sanitize("a:b\tc"), "a b c");
    }

    #[test]
    fn empty_document_is_allowed() {
        let data = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t1\n";
        let c = read_collection(Cursor::new(data)).unwrap();
        assert_eq!(c.documents().len(), 1);
        assert_eq!(c.documents()[0].distinct_terms(), 0);
    }

    #[test]
    fn stream_reader_yields_records_in_file_order() {
        let original = sample();
        let mut buf = Vec::new();
        write_collection(&original, &mut buf).unwrap();
        let reader = TsvStreamReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(reader.timeline_len(), original.timeline_len());
        let records: Vec<TsvRecord> = reader.map(Result::unwrap).collect();
        let n_streams = records
            .iter()
            .filter(|r| matches!(r, TsvRecord::Stream { .. }))
            .count();
        let docs: Vec<&RawDocument> = records
            .iter()
            .filter_map(|r| match r {
                TsvRecord::Document(d) => Some(d),
                TsvRecord::Stream { .. } => None,
            })
            .collect();
        assert_eq!(n_streams, original.n_streams());
        assert_eq!(docs.len(), original.documents().len());
        // Document term lists are written sorted by term id, so the first
        // sample document must lead with its first interned term.
        assert_eq!(docs[0].timestamp, 0);
        assert_eq!(docs[0].stream, 0);
        assert_eq!(docs[1].counts.iter().map(|(_, c)| c).sum::<u32>(), 3);
    }

    #[test]
    fn stream_reader_allows_streams_interleaved_with_documents() {
        // Append-mode: a second stream comes online after documents of the
        // first have been read.
        let data = "C\t4\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tx:1\nS\t1\tB\t1\t1\t1\t1\nD\t1\t2\ty:2\n";
        let records: Vec<TsvRecord> = TsvStreamReader::new(Cursor::new(data))
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert!(matches!(records[0], TsvRecord::Stream { ext_id: 0, .. }));
        assert!(matches!(records[1], TsvRecord::Document(_)));
        assert!(matches!(records[2], TsvRecord::Stream { ext_id: 1, .. }));
        assert!(matches!(records[3], TsvRecord::Document(_)));
        // The batch loader accepts the same file.
        let c = read_collection(Cursor::new(data)).unwrap();
        assert_eq!(c.n_streams(), 2);
        assert_eq!(c.documents().len(), 2);
    }

    #[test]
    fn stream_reader_rejects_header_problems() {
        assert!(TsvStreamReader::new(Cursor::new("")).is_err());
        assert!(TsvStreamReader::new(Cursor::new("S\t0\tA\t0\t0\t0\t0\n")).is_err());
        assert!(TsvStreamReader::new(Cursor::new("C\tnope\n")).is_err());
        // A duplicate header is a record-level error.
        let mut reader = TsvStreamReader::new(Cursor::new("C\t2\nC\t3\n")).unwrap();
        assert!(reader.next().unwrap().is_err());
    }

    #[test]
    fn stream_reader_reports_line_numbers() {
        let data = "C\t2\n\nS\t0\tA\t0\t0\t0\t0\nD\t0\t9\tfoo:1\n";
        let mut reader = TsvStreamReader::new(Cursor::new(data)).unwrap();
        assert!(reader.next().unwrap().is_ok()); // the S record
        let err = reader.next().unwrap().unwrap_err(); // timestamp beyond timeline
        match err {
            TsvError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("timestamp"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }
}
