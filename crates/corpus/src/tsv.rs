//! Minimal tab-separated persistence for collections.
//!
//! The format is intentionally simple and dependency-free: one file, three
//! record types distinguished by their first column.
//!
//! ```text
//! C   <timeline_len>
//! S   <stream_id> <name> <lat> <lon> <x> <y>
//! D   <stream_id> <timestamp> <term>:<count> <term>:<count> ...
//! ```
//!
//! Term strings must not contain tabs or colons; the writer replaces both
//! with spaces. This is sufficient for checkpointing synthetic corpora and
//! for shipping small example datasets with the repository.

use crate::collection::{Collection, CollectionBuilder, StreamId};
use crate::dictionary::TermId;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

use stb_geo::{GeoPoint, Point2D};

/// Errors produced while reading a TSV collection.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with the 1-based line number and a description.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "i/o error: {e}"),
            TsvError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e)
    }
}

fn sanitize(term: &str) -> String {
    term.replace(['\t', ':', '\n'], " ")
}

/// Writes a collection in the TSV format described in the module docs.
pub fn write_collection<W: Write>(collection: &Collection, mut out: W) -> Result<(), TsvError> {
    writeln!(out, "C\t{}", collection.timeline_len())?;
    for s in collection.streams() {
        writeln!(
            out,
            "S\t{}\t{}\t{}\t{}\t{}\t{}",
            s.id.0,
            sanitize(&s.name),
            s.geostamp.lat,
            s.geostamp.lon,
            s.position.x,
            s.position.y
        )?;
    }
    for d in collection.documents() {
        write!(out, "D\t{}\t{}", d.stream.0, d.timestamp)?;
        let mut terms: Vec<(&TermId, &u32)> = d.counts.iter().collect();
        terms.sort_by_key(|(t, _)| **t);
        for (term, count) in terms {
            let name = collection
                .dict()
                .resolve(*term)
                .map(sanitize)
                .unwrap_or_else(|| format!("term{}", term.0));
            write!(out, "\t{name}:{count}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// A parsed `D` record waiting for the full stream table: external stream
/// id, timestamp, and the (term, count) pairs.
type PendingDoc = (u32, usize, Vec<(String, u32)>);

/// Reads a collection previously written by [`write_collection`].
pub fn read_collection<R: BufRead>(input: R) -> Result<Collection, TsvError> {
    let mut timeline_len: Option<usize> = None;
    let mut builder: Option<CollectionBuilder> = None;
    let mut stream_map: HashMap<u32, StreamId> = HashMap::new();
    let mut pending_docs: Vec<PendingDoc> = Vec::new();

    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let err = |message: &str| TsvError::Parse {
            line: lineno,
            message: message.to_string(),
        };
        match fields[0] {
            "C" => {
                let len: usize = fields
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("invalid timeline length"))?;
                timeline_len = Some(len);
                builder = Some(CollectionBuilder::new(len));
            }
            "S" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("S record before C record"))?;
                if fields.len() < 7 {
                    return Err(err("S record needs 7 fields"));
                }
                let ext_id: u32 = fields[1].parse().map_err(|_| err("invalid stream id"))?;
                let name = fields[2];
                let lat: f64 = fields[3].parse().map_err(|_| err("invalid latitude"))?;
                let lon: f64 = fields[4].parse().map_err(|_| err("invalid longitude"))?;
                let x: f64 = fields[5].parse().map_err(|_| err("invalid x"))?;
                let y: f64 = fields[6].parse().map_err(|_| err("invalid y"))?;
                let id =
                    b.add_stream_with_position(name, GeoPoint::new(lat, lon), Point2D::new(x, y));
                stream_map.insert(ext_id, id);
            }
            "D" => {
                if builder.is_none() {
                    return Err(err("D record before C record"));
                }
                if fields.len() < 3 {
                    return Err(err("D record needs at least 3 fields"));
                }
                let stream: u32 = fields[1].parse().map_err(|_| err("invalid stream id"))?;
                let ts: usize = fields[2].parse().map_err(|_| err("invalid timestamp"))?;
                if ts >= timeline_len.unwrap_or(0) {
                    return Err(err("timestamp beyond timeline"));
                }
                let mut counts = Vec::new();
                for field in &fields[3..] {
                    let (term, count) = field
                        .rsplit_once(':')
                        .ok_or_else(|| err("term field missing ':'"))?;
                    let count: u32 = count.parse().map_err(|_| err("invalid term count"))?;
                    counts.push((term.to_string(), count));
                }
                pending_docs.push((stream, ts, counts));
            }
            other => {
                return Err(TsvError::Parse {
                    line: lineno,
                    message: format!("unknown record type '{other}'"),
                });
            }
        }
    }

    let mut builder = builder.ok_or(TsvError::Parse {
        line: 0,
        message: "missing C record".to_string(),
    })?;
    for (ext_stream, ts, counts) in pending_docs {
        let stream = *stream_map.get(&ext_stream).ok_or(TsvError::Parse {
            line: 0,
            message: format!("document references unknown stream {ext_stream}"),
        })?;
        let mut bag = HashMap::new();
        for (term, count) in counts {
            let id = builder.dict_mut().intern(&term);
            *bag.entry(id).or_insert(0) += count;
        }
        builder.add_document(stream, ts, bag);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;
    use std::io::Cursor;

    fn sample() -> Collection {
        let mut b = CollectionBuilder::new(4);
        let tok = Tokenizer::new();
        let s0 = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
        let s1 = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
        b.add_text_document(s0, 0, "ceasefire announced today", &tok);
        b.add_text_document(s1, 3, "piracy piracy somalia", &tok);
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = sample();
        let mut buf = Vec::new();
        write_collection(&original, &mut buf).unwrap();
        let restored = read_collection(Cursor::new(buf)).unwrap();

        assert_eq!(restored.n_streams(), original.n_streams());
        assert_eq!(restored.timeline_len(), original.timeline_len());
        assert_eq!(restored.documents().len(), original.documents().len());
        assert_eq!(restored.n_terms(), original.n_terms());

        let piracy_orig = original.dict().get("piracy").unwrap();
        let piracy_rest = restored.dict().get("piracy").unwrap();
        assert_eq!(
            original.term_merged_series(piracy_orig),
            restored.term_merged_series(piracy_rest)
        );
        assert_eq!(restored.stream(StreamId(0)).name, "Athens");
        assert!((restored.stream(StreamId(1)).geostamp.lon - -77.0).abs() < 1e-9);
    }

    #[test]
    fn serialize_parse_serialize_is_a_fixpoint() {
        // After one round trip the text form must be stable byte-for-byte:
        // writer output is deterministic (sorted term ids, fixed field
        // order), so a second round trip cannot drift.
        let original = sample();
        let mut first = Vec::new();
        write_collection(&original, &mut first).unwrap();
        let restored = read_collection(Cursor::new(first.clone())).unwrap();
        let mut second = Vec::new();
        write_collection(&restored, &mut second).unwrap();
        assert_eq!(
            String::from_utf8(first).unwrap(),
            String::from_utf8(second).unwrap()
        );
    }

    #[test]
    fn round_trip_sanitizes_hostile_term_and_stream_names() {
        let mut b = CollectionBuilder::new(2);
        let s = b.add_stream("Tab\tCity", GeoPoint::new(1.0, 2.0));
        let weird = b.dict_mut().intern("a:b\tc");
        let plain = b.dict_mut().intern("plain");
        let mut counts = HashMap::new();
        counts.insert(weird, 3);
        counts.insert(plain, 1);
        b.add_document(s, 0, counts);
        let original = b.build();

        let mut buf = Vec::new();
        write_collection(&original, &mut buf).unwrap();
        let restored = read_collection(Cursor::new(buf)).unwrap();
        assert_eq!(restored.documents().len(), 1);
        // The hostile separators were replaced by spaces but the term count
        // survives under the sanitized name.
        let sanitized = restored.dict().get("a b c").unwrap();
        assert_eq!(restored.documents()[0].counts.get(&sanitized), Some(&3));
        assert_eq!(restored.stream(StreamId(0)).name, "Tab City");
    }

    #[test]
    fn rejects_malformed_term_count() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tfoo:bar\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
        let missing_colon = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tfoo\n";
        assert!(read_collection(Cursor::new(missing_colon)).is_err());
    }

    #[test]
    fn rejects_document_for_unknown_stream() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t9\t0\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let bad = "X\tfoo\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_document_before_header() {
        let bad = "D\t0\t0\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_timestamp_beyond_timeline() {
        let bad = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t5\tfoo:1\n";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_missing_header() {
        let bad = "";
        assert!(read_collection(Cursor::new(bad)).is_err());
    }

    #[test]
    fn sanitize_strips_separators() {
        assert_eq!(sanitize("a:b\tc"), "a b c");
    }

    #[test]
    fn empty_document_is_allowed() {
        let data = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t1\n";
        let c = read_collection(Cursor::new(data)).unwrap();
        assert_eq!(c.documents().len(), 1);
        assert_eq!(c.documents()[0].distinct_terms(), 0);
    }
}
