//! Deterministic text tokenization.
//!
//! The corpora of the paper are bags of terms per document; this tokenizer
//! turns raw text into such bags: lowercase, split on non-alphanumeric
//! characters, drop very short tokens and a small English stop-word list.
//! It is intentionally simple — the burstiness framework is agnostic to the
//! linguistic sophistication of the term extraction.

use crate::dictionary::{TermDict, TermId};
use std::collections::HashMap;

/// Default English stop words filtered by [`Tokenizer::default`].
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "he",
    "her", "his", "in", "is", "it", "its", "of", "on", "or", "she", "that", "the", "their", "they",
    "this", "to", "was", "were", "will", "with",
];

/// Configurable tokenizer producing term-frequency bags.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stopwords: Vec<String>,
    min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
            min_len: 2,
        }
    }
}

impl Tokenizer {
    /// A tokenizer with the default stop-word list and a minimum token
    /// length of 2.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tokenizer that keeps every token (no stop words, length >= 1).
    pub fn keep_everything() -> Self {
        Self {
            stopwords: Vec::new(),
            min_len: 1,
        }
    }

    /// Replaces the stop-word list.
    pub fn with_stopwords<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.stopwords = words.into_iter().map(|w| w.into().to_lowercase()).collect();
        self
    }

    /// Sets the minimum kept token length.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Splits `text` into normalized tokens (lowercased, alphanumeric runs),
    /// applying the length and stop-word filters.
    pub fn tokenize<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(move |tok| tok.len() >= self.min_len)
            .map(|tok| tok.to_lowercase())
            .filter(move |tok| !self.stopwords.iter().any(|s| s == tok))
    }

    /// Tokenizes `text` and interns the tokens, returning the term-frequency
    /// bag of the document.
    pub fn term_counts(&self, text: &str, dict: &mut TermDict) -> HashMap<TermId, u32> {
        let mut counts = HashMap::new();
        for tok in self.tokenize(text) {
            let id = dict.intern(&tok);
            *counts.entry(id).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        let t = Tokenizer::new();
        let toks: Vec<_> = t.tokenize("Earthquake strikes Costa-Rica!").collect();
        assert_eq!(toks, vec!["earthquake", "strikes", "costa", "rica"]);
    }

    #[test]
    fn filters_stopwords_and_short_tokens() {
        let t = Tokenizer::new();
        let toks: Vec<_> = t.tokenize("the price of oil in the US").collect();
        assert!(!toks.contains(&"the".to_string()));
        assert!(!toks.contains(&"of".to_string()));
        assert!(toks.contains(&"price".to_string()));
        assert!(toks.contains(&"oil".to_string()));
        assert!(toks.contains(&"us".to_string()));
    }

    #[test]
    fn keep_everything_keeps_stopwords() {
        let t = Tokenizer::keep_everything();
        let toks: Vec<_> = t.tokenize("the a I").collect();
        assert_eq!(toks, vec!["the", "a", "i"]);
    }

    #[test]
    fn custom_stopwords_replace_the_default_list() {
        let t = Tokenizer::new().with_stopwords(["earthquake"]);
        let toks: Vec<_> = t.tokenize("earthquake in Chile").collect();
        // "earthquake" is now filtered; "in" is kept because the custom list
        // replaces (not extends) the default one.
        assert_eq!(toks, vec!["in", "chile"]);
    }

    #[test]
    fn term_counts_aggregates_repeats() {
        let t = Tokenizer::new();
        let mut dict = TermDict::new();
        let counts = t.term_counts("gaza ceasefire gaza strip gaza", &mut dict);
        let gaza = dict.get("gaza").unwrap();
        let ceasefire = dict.get("ceasefire").unwrap();
        assert_eq!(counts[&gaza], 3);
        assert_eq!(counts[&ceasefire], 1);
    }

    #[test]
    fn empty_text_gives_empty_bag() {
        let t = Tokenizer::new();
        let mut dict = TermDict::new();
        assert!(t.term_counts("", &mut dict).is_empty());
        assert!(t.term_counts("... !!! ---", &mut dict).is_empty());
    }

    #[test]
    fn numbers_are_tokens() {
        let t = Tokenizer::new();
        let toks: Vec<_> = t.tokenize("flight 447 crashed").collect();
        assert!(toks.contains(&"447".to_string()));
    }
}
