//! Document streams and spatiotemporal collections.
//!
//! This crate is the *data substrate* of the workspace: it models the
//! geostamped document streams of the paper's Section 2.
//!
//! * [`TermDict`] — interning of term strings into dense [`TermId`]s.
//! * [`Tokenizer`] — a simple, deterministic tokenizer (lowercase,
//!   alphanumeric, stop-word filtering) used to turn raw text into term
//!   counts.
//! * [`Document`] — a document with its stream of origin, timestamp, and
//!   term frequency vector.
//! * [`StreamMeta`] — a document stream: its name and geostamp (and the 2-D
//!   map position used by the regional mining).
//! * [`Collection`] — the spatiotemporal collection `D = {D_1[·],...,D_n[·]}`:
//!   per-stream, per-timestamp term frequencies (`D_x[i][t]`, Eq. 6),
//!   snapshots `D[i]`, and per-term frequency series.
//! * [`tsv`] — a small tab-separated persistence layer so corpora can be
//!   saved and reloaded without extra dependencies, with both a batch
//!   loader and a streaming/append-mode record reader
//!   ([`tsv::TsvStreamReader`]) for tick-by-tick replay.
//!
//! Collections are buildable in batch ([`CollectionBuilder`]) and mutable
//! afterwards (`Collection::{add_stream, extend_timeline, push_document,
//! dict_mut}`), which is what the live ingestion crate (`stb-ingest`)
//! builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod dictionary;
pub mod document;
pub mod tokenizer;
pub mod tsv;

pub use collection::{
    Collection, CollectionBuilder, CollectionParts, PartsError, Snapshot, StreamId, StreamMeta,
    TermSeriesParts, Timestamp,
};
pub use dictionary::{TermDict, TermId};
pub use document::{DocId, Document};
pub use tokenizer::Tokenizer;
