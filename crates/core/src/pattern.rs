//! Spatiotemporal burstiness patterns.
//!
//! Both miners (and both baselines) ultimately report *patterns*: a set of
//! streams, a temporal interval, and a burstiness score. The search engine
//! (Section 5 of the paper) only needs to know whether a document — which
//! belongs to one stream and one timestamp — *overlaps* a pattern, and how
//! strong that pattern is; the [`Pattern`] trait captures exactly that, so
//! the engine works uniformly over combinatorial patterns, regional
//! patterns, and the temporal-only baseline.

use std::collections::HashMap;

use stb_corpus::{StreamId, TermId, Timestamp};
use stb_geo::{Mbr, Point2D, Rect};
use stb_timeseries::TimeInterval;

/// Common behaviour of every spatiotemporal pattern type.
pub trait Pattern {
    /// The streams covered by the pattern, sorted by id.
    fn streams(&self) -> &[StreamId];

    /// The temporal interval covered by the pattern.
    fn timeframe(&self) -> TimeInterval;

    /// The burstiness score of the pattern (higher is stronger).
    fn score(&self) -> f64;

    /// Whether a document originating from `stream` at `timestamp` overlaps
    /// the pattern (Section 5: both the stream of origin and the timestamp
    /// must be included).
    fn overlaps(&self, stream: StreamId, timestamp: Timestamp) -> bool {
        self.timeframe().contains(timestamp) && self.streams().binary_search(&stream).is_ok()
    }
}

/// Spatial and temporal extent of a pattern, unified across pattern kinds.
///
/// The serving layer's spatiotemporal query filters (`stb-search`'s
/// `Query::time_window` / `Query::region`) need one answer to "where and
/// when does this pattern live?" regardless of how it was mined:
///
/// * a regional (`STLocal`) pattern carries an explicit map rectangle — its
///   region *is* that rectangle;
/// * a combinatorial (`STComb` / `TB`) pattern only names streams — its
///   region is the minimum bounding rectangle of the participating streams'
///   planar positions, exactly the geometry the paper evaluates in Table 1
///   ("# countries in MBR").
///
/// The temporal side is already unified by [`Pattern::timeframe`];
/// [`PatternGeometry::interval`] simply forwards to it so both axes are
/// readable through one trait.
pub trait PatternGeometry: Pattern {
    /// The temporal extent of the pattern (alias of [`Pattern::timeframe`]).
    fn interval(&self) -> TimeInterval {
        self.timeframe()
    }

    /// The spatial footprint of the pattern on the planar map.
    ///
    /// `positions` holds every stream's planar position, indexed by
    /// [`StreamId::index`] (i.e. `Collection::positions()`). Returns `None`
    /// when the pattern cannot be located spatially — it covers no stream,
    /// or none of its streams has a known position. A pattern without a
    /// region never intersects any spatial filter.
    fn region(&self, positions: &[Point2D]) -> Option<Rect> {
        let mut mbr = Mbr::new();
        for s in self.streams() {
            if let Some(p) = positions.get(s.index()) {
                mbr.push(*p);
            }
        }
        mbr.rect()
    }
}

/// A combinatorial spatiotemporal pattern (Section 3): an arbitrary set of
/// streams that were simultaneously bursty over a common temporal segment.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinatorialPattern {
    /// The streams participating in the pattern, sorted by id.
    pub streams: Vec<StreamId>,
    /// The common temporal segment shared by all participating intervals.
    pub timeframe: TimeInterval,
    /// Total burstiness: the sum of the temporal burstiness scores of the
    /// participating per-stream intervals (Problem 1 / HSS objective).
    pub score: f64,
    /// The per-stream bursty intervals that formed the pattern: for each
    /// participating stream, its full interval and that interval's `B_T`.
    pub intervals: Vec<(StreamId, TimeInterval, f64)>,
}

impl CombinatorialPattern {
    /// Creates a pattern, normalizing the stream order.
    pub fn new(
        mut streams: Vec<StreamId>,
        timeframe: TimeInterval,
        score: f64,
        intervals: Vec<(StreamId, TimeInterval, f64)>,
    ) -> Self {
        streams.sort();
        streams.dedup();
        Self {
            streams,
            timeframe,
            score,
            intervals,
        }
    }

    /// Number of participating streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }
}

impl Pattern for CombinatorialPattern {
    fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    fn timeframe(&self) -> TimeInterval {
        self.timeframe
    }

    fn score(&self) -> f64 {
        self.score
    }
}

/// Combinatorial patterns are located by the MBR of their streams (default
/// [`PatternGeometry`] behaviour).
impl PatternGeometry for CombinatorialPattern {}

/// A regional spatiotemporal pattern (Section 4): a maximal spatiotemporal
/// window — an axis-aligned map rectangle together with the maximal time
/// window over which it stayed bursty.
///
/// Two stream sets are carried: [`RegionalPattern::streams`] holds the
/// streams that actually contributed positive burstiness to the window (the
/// streams "included" in the pattern, which is what the paper counts in its
/// evaluation), while [`RegionalPattern::region_streams`] holds every stream
/// whose position falls inside the rectangle — a superset that may contain
/// streams that never mentioned the term (the "false positives" the paper's
/// Section 4 discussion says are trivial to remember and exclude).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionalPattern {
    /// The bursty region on the map.
    pub rect: Rect,
    /// The streams that contributed positive burstiness to the window,
    /// sorted by id.
    pub streams: Vec<StreamId>,
    /// Every stream whose position falls inside the region, sorted by id.
    pub region_streams: Vec<StreamId>,
    /// The maximal time window of the pattern.
    pub timeframe: TimeInterval,
    /// The w-score of the window: the sum of the region's r-scores over the
    /// window (Eq. 9).
    pub score: f64,
}

impl RegionalPattern {
    /// Creates a pattern whose region membership coincides with its
    /// contributing streams, normalizing the stream order.
    pub fn new(rect: Rect, streams: Vec<StreamId>, timeframe: TimeInterval, score: f64) -> Self {
        Self::with_region(rect, streams.clone(), streams, timeframe, score)
    }

    /// Creates a pattern with distinct contributing and region stream sets.
    pub fn with_region(
        rect: Rect,
        mut streams: Vec<StreamId>,
        mut region_streams: Vec<StreamId>,
        timeframe: TimeInterval,
        score: f64,
    ) -> Self {
        streams.sort();
        streams.dedup();
        region_streams.sort();
        region_streams.dedup();
        Self {
            rect,
            streams,
            region_streams,
            timeframe,
            score,
        }
    }

    /// Number of contributing streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of streams inside the region (contributing or not).
    pub fn n_region_streams(&self) -> usize {
        self.region_streams.len()
    }
}

impl Pattern for RegionalPattern {
    fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    fn timeframe(&self) -> TimeInterval {
        self.timeframe
    }

    fn score(&self) -> f64 {
        self.score
    }
}

impl PatternGeometry for RegionalPattern {
    /// A regional pattern's footprint is the mined rectangle itself, not an
    /// MBR of its streams — the rectangle is the pattern's identity.
    fn region(&self, _positions: &[Point2D]) -> Option<Rect> {
        Some(self.rect)
    }
}

/// A pattern reduced to its serializable essentials: covered streams,
/// timeframe, burstiness score, and the spatial footprint **captured at
/// mining time** from the then-current stream positions.
///
/// This is the persistence form of a pattern ([`PatternRecord::capture`]
/// freezes any [`PatternGeometry`] into one). The captured region is
/// carried verbatim rather than re-derived: stream positions can change
/// after mining (new streams come online, a projection is recomputed), and
/// a restored pattern must filter spatially exactly as the original did.
/// `PatternRecord` therefore implements [`PatternGeometry`] by returning
/// its stored footprint and ignoring the positions it is offered.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRecord {
    /// The streams covered by the pattern, sorted by id.
    pub streams: Vec<StreamId>,
    /// The temporal interval covered by the pattern.
    pub timeframe: TimeInterval,
    /// The spatial footprint captured when the pattern was mined, if any.
    pub region: Option<Rect>,
    /// The burstiness score of the pattern.
    pub score: f64,
}

impl PatternRecord {
    /// Freezes any geometric pattern into its serializable record,
    /// capturing its spatial footprint over `positions` (every stream's
    /// planar position, indexed by [`StreamId::index`]).
    pub fn capture<P: PatternGeometry>(pattern: &P, positions: &[Point2D]) -> Self {
        let mut streams = pattern.streams().to_vec();
        streams.sort();
        streams.dedup();
        Self {
            streams,
            timeframe: pattern.timeframe(),
            region: pattern.region(positions),
            score: pattern.score(),
        }
    }
}

impl Pattern for PatternRecord {
    fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    fn timeframe(&self) -> TimeInterval {
        self.timeframe
    }

    fn score(&self) -> f64 {
        self.score
    }
}

impl PatternGeometry for PatternRecord {
    /// The footprint captured at mining time, verbatim — never re-derived
    /// from current positions.
    fn region(&self, _positions: &[Point2D]) -> Option<Rect> {
        self.region
    }
}

/// A per-term batch of mined patterns, ready to feed an index builder.
///
/// Mining drivers naturally produce "patterns of many terms" collections —
/// `STLocal::mine_collection_parallel` and `STComb::mine_collection_parallel`
/// return `Vec<(TermId, Vec<P>)>`, ad-hoc callers often hold a
/// `HashMap<TermId, Vec<P>>` — and the search engine wants to ingest them
/// wholesale rather than term by term. This trait is the plumbing between
/// the two: both shapes implement it, so any miner output can be handed to
/// `BurstySearchEngine::set_patterns_from` directly.
pub trait PatternSource {
    /// The concrete pattern type carried per term.
    type P: Pattern;

    /// Every term the source has patterns for, in a deterministic order and
    /// without duplicates.
    fn terms(&self) -> Vec<TermId>;

    /// The patterns of one term (empty slice for terms not in the source).
    /// If the source carries several entries for the same term, the last
    /// one wins — matching the replace semantics of registering patterns
    /// term by term.
    fn term_patterns(&self, term: TermId) -> &[Self::P];

    /// Visits every `(term, patterns)` entry in source order. Consumers
    /// ingesting a whole source should prefer this over
    /// `terms()`/`term_patterns()` round-trips: sources with cheap
    /// sequential access (like the `Vec` of a mining run) override it to
    /// O(n), and duplicate term entries replay in order, so "last wins"
    /// falls out of the replace semantics of the consumer.
    fn for_each_term(&self, f: &mut dyn FnMut(TermId, &[Self::P])) {
        for term in self.terms() {
            f(term, self.term_patterns(term));
        }
    }
}

impl<P: Pattern> PatternSource for Vec<(TermId, Vec<P>)> {
    type P = P;

    fn terms(&self) -> Vec<TermId> {
        let mut seen = Vec::new();
        for (t, _) in self {
            if !seen.contains(t) {
                seen.push(*t);
            }
        }
        seen
    }

    fn term_patterns(&self, term: TermId) -> &[P] {
        // Last entry wins when a term appears more than once (e.g. two
        // concatenated mining runs).
        self.iter()
            .rev()
            .find(|(t, _)| *t == term)
            .map(|(_, ps)| ps.as_slice())
            .unwrap_or(&[])
    }

    fn for_each_term(&self, f: &mut dyn FnMut(TermId, &[P])) {
        for (term, patterns) in self {
            f(*term, patterns);
        }
    }
}

impl<P: Pattern> PatternSource for HashMap<TermId, Vec<P>> {
    type P = P;

    fn terms(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = self.keys().copied().collect();
        ids.sort();
        ids
    }

    fn term_patterns(&self, term: TermId) -> &[P] {
        self.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_comb() -> CombinatorialPattern {
        CombinatorialPattern::new(
            vec![StreamId(3), StreamId(1), StreamId(3)],
            TimeInterval::new(5, 9),
            2.1,
            vec![
                (StreamId(1), TimeInterval::new(4, 9), 1.3),
                (StreamId(3), TimeInterval::new(5, 11), 0.8),
            ],
        )
    }

    #[test]
    fn streams_are_sorted_and_deduped() {
        let p = sample_comb();
        assert_eq!(p.streams, vec![StreamId(1), StreamId(3)]);
        assert_eq!(p.n_streams(), 2);
    }

    #[test]
    fn overlap_requires_both_stream_and_time() {
        let p = sample_comb();
        assert!(p.overlaps(StreamId(1), 5));
        assert!(p.overlaps(StreamId(3), 9));
        assert!(!p.overlaps(StreamId(1), 4)); // outside the common segment
        assert!(!p.overlaps(StreamId(2), 6)); // stream not in the pattern
    }

    #[test]
    fn regional_pattern_overlap() {
        let p = RegionalPattern::new(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![StreamId(5), StreamId(2)],
            TimeInterval::new(3, 8),
            4.2,
        );
        assert_eq!(p.streams, vec![StreamId(2), StreamId(5)]);
        assert!(p.overlaps(StreamId(5), 3));
        assert!(!p.overlaps(StreamId(5), 9));
        assert!(!p.overlaps(StreamId(0), 3));
        assert_eq!(p.score(), 4.2);
        assert_eq!(p.timeframe(), TimeInterval::new(3, 8));
    }

    #[test]
    fn pattern_source_shapes_agree() {
        let p = sample_comb();
        let as_vec: Vec<(TermId, Vec<CombinatorialPattern>)> =
            vec![(TermId(4), vec![p.clone()]), (TermId(1), vec![])];
        let as_map: HashMap<TermId, Vec<CombinatorialPattern>> = as_vec.iter().cloned().collect();
        // The vec form preserves input order; the map form sorts.
        assert_eq!(as_vec.terms(), vec![TermId(4), TermId(1)]);
        assert_eq!(as_map.terms(), vec![TermId(1), TermId(4)]);
        for source in [
            &as_vec as &dyn PatternSource<P = CombinatorialPattern>,
            &as_map,
        ] {
            assert_eq!(source.term_patterns(TermId(4)), std::slice::from_ref(&p));
            assert!(source.term_patterns(TermId(1)).is_empty());
            assert!(source.term_patterns(TermId(99)).is_empty());
        }
    }

    #[test]
    fn duplicate_term_entries_last_wins() {
        let weak =
            CombinatorialPattern::new(vec![StreamId(0)], TimeInterval::new(0, 1), 0.5, vec![]);
        let strong =
            CombinatorialPattern::new(vec![StreamId(1)], TimeInterval::new(2, 3), 2.0, vec![]);
        let source: Vec<(TermId, Vec<CombinatorialPattern>)> =
            vec![(TermId(7), vec![weak]), (TermId(7), vec![strong.clone()])];
        // terms() dedupes; term_patterns() keeps the last entry.
        assert_eq!(source.terms(), vec![TermId(7)]);
        assert_eq!(
            source.term_patterns(TermId(7)),
            std::slice::from_ref(&strong)
        );
        // for_each_term replays both entries in order (last wins downstream).
        let mut replay = Vec::new();
        source.for_each_term(&mut |t, ps| replay.push((t, ps.len())));
        assert_eq!(replay, vec![(TermId(7), 1), (TermId(7), 1)]);
    }

    #[test]
    fn geometry_of_combinatorial_pattern_is_stream_mbr() {
        let p = sample_comb(); // streams 1 and 3
        let positions = vec![
            Point2D::new(0.0, 0.0),
            Point2D::new(2.0, -1.0),
            Point2D::new(9.0, 9.0),
            Point2D::new(5.0, 3.0),
        ];
        let region = p.region(&positions).unwrap();
        assert_eq!(region, Rect::new(2.0, -1.0, 5.0, 3.0));
        assert_eq!(p.interval(), p.timeframe());
        // Positions missing for every stream → the pattern has no region.
        assert!(p.region(&positions[..1]).is_none());
    }

    #[test]
    fn geometry_of_regional_pattern_is_its_rect() {
        let rect = Rect::new(0.0, 0.0, 10.0, 10.0);
        let p = RegionalPattern::new(rect, vec![StreamId(0)], TimeInterval::new(3, 8), 4.2);
        // The mined rectangle wins regardless of stream positions.
        assert_eq!(p.region(&[Point2D::new(99.0, 99.0)]), Some(rect));
        assert_eq!(p.region(&[]), Some(rect));
        assert_eq!(p.interval(), TimeInterval::new(3, 8));
    }

    #[test]
    fn trait_objects_work() {
        let comb = sample_comb();
        let reg = RegionalPattern::new(
            Rect::new(0.0, 0.0, 1.0, 1.0),
            vec![StreamId(0)],
            TimeInterval::new(0, 0),
            1.0,
        );
        let patterns: Vec<&dyn Pattern> = vec![&comb, &reg];
        assert_eq!(patterns.len(), 2);
        assert!(patterns[0].score() > patterns[1].score());
    }
}
