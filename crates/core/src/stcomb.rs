//! `STComb`: combinatorial spatiotemporal patterns (Section 3).
//!
//! For a given term, `STComb`:
//!
//! 1. extracts the non-overlapping bursty temporal intervals of the term in
//!    every stream independently (the KDD'09 discrepancy detector of
//!    [`stb_timeseries::bursty_intervals`]),
//! 2. pools all intervals and solves the Highest-Scoring-Subset problem —
//!    the maximum-weight clique of the interval graph — to obtain the
//!    strongest set of streams that were simultaneously bursty
//!    ([`crate::interval_clique`]),
//! 3. optionally iterates: removing the clique's intervals and re-solving
//!    yields multiple non-overlapping combinatorial patterns, strongest
//!    first, exactly as the paper's "Getting Multiple Patterns" paragraph
//!    prescribes.
//!
//! The miner is agnostic to how the per-stream intervals were produced: any
//! detector of non-overlapping weighted intervals can be plugged in through
//! [`STComb::mine_intervals`] (e.g. Kleinberg bursts via
//! [`stb_timeseries::KleinbergDetector`]).

use crate::interval_clique::{max_weight_interval_clique, WeightedInterval};
use crate::pattern::CombinatorialPattern;
use stb_corpus::{Collection, StreamId, TermId};
use stb_timeseries::temporal_burst::bursty_intervals_with_threshold;
use stb_timeseries::TimeInterval;

/// Configuration of the `STComb` miner.
#[derive(Debug, Clone)]
pub struct STCombConfig {
    /// Maximum number of (non-overlapping) patterns to report per term.
    pub max_patterns: usize,
    /// Minimum temporal burstiness `B_T` for a per-stream interval to enter
    /// the clique problem. The paper keeps every positive interval (0.0);
    /// raising this suppresses noise-level intervals and speeds up mining.
    pub min_interval_score: f64,
    /// Minimum number of streams a pattern must span to be reported.
    pub min_streams: usize,
}

impl Default for STCombConfig {
    fn default() -> Self {
        Self {
            max_patterns: 10,
            min_interval_score: 0.0,
            min_streams: 1,
        }
    }
}

/// The `STComb` miner.
///
/// # Example
///
/// Two streams burst together over timestamps 3..=5, a third stays flat;
/// `STComb` reports one pattern spanning exactly the two bursty streams:
///
/// ```
/// use stb_core::STComb;
/// use stb_corpus::StreamId;
///
/// let quiet = vec![1.0; 10];
/// let mut bursty = quiet.clone();
/// for t in 3..=5 {
///     bursty[t] = 9.0;
/// }
/// let series = vec![
///     (StreamId(0), bursty.clone()),
///     (StreamId(1), bursty),
///     (StreamId(2), quiet),
/// ];
/// let patterns = STComb::new().mine_series(&series);
/// assert_eq!(patterns[0].streams, vec![StreamId(0), StreamId(1)]);
/// assert!(patterns[0].timeframe.contains(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct STComb {
    config: STCombConfig,
}

impl STComb {
    /// Creates a miner with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: STCombConfig) -> Self {
        Self { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &STCombConfig {
        &self.config
    }

    /// Mines combinatorial patterns for one term of a document collection.
    ///
    /// Every stream in which the term occurs contributes its bursty temporal
    /// intervals; patterns are returned strongest first.
    pub fn mine_collection(
        &self,
        collection: &Collection,
        term: TermId,
    ) -> Vec<CombinatorialPattern> {
        let series: Vec<(StreamId, Vec<f64>)> = collection
            .streams_with_term(term)
            .into_iter()
            .map(|s| (s, collection.term_stream_series(term, s)))
            .collect();
        self.mine_series(&series)
    }

    /// Mines combinatorial patterns from explicit per-stream frequency
    /// series (one entry per stream: the stream id and its frequency series
    /// over the shared timeline).
    pub fn mine_series(&self, series: &[(StreamId, Vec<f64>)]) -> Vec<CombinatorialPattern> {
        let mut intervals: Vec<WeightedInterval> = Vec::new();
        for (stream, freqs) in series {
            for b in bursty_intervals_with_threshold(freqs, self.config.min_interval_score) {
                intervals.push(WeightedInterval::new(b.interval, b.score, stream.index()));
            }
        }
        self.mine_intervals(&intervals)
    }

    /// Mines combinatorial patterns from an explicit pool of per-stream
    /// bursty intervals (the tag of each interval must be the stream index).
    ///
    /// This is the lowest-level entry point; it lets callers substitute any
    /// temporal burst detector.
    pub fn mine_intervals(&self, intervals: &[WeightedInterval]) -> Vec<CombinatorialPattern> {
        let mut pool: Vec<WeightedInterval> = intervals.to_vec();
        let mut patterns = Vec::new();
        while patterns.len() < self.config.max_patterns {
            let Some(clique) = max_weight_interval_clique(&pool) else {
                break;
            };
            let member_intervals: Vec<(StreamId, TimeInterval, f64)> = clique
                .members
                .iter()
                .map(|&i| {
                    let wi = pool[i];
                    (StreamId(wi.tag as u32), wi.interval, wi.weight)
                })
                .collect();
            let streams: Vec<StreamId> = member_intervals.iter().map(|(s, _, _)| *s).collect();
            let pattern =
                CombinatorialPattern::new(streams, clique.common, clique.weight, member_intervals);
            // Remove the clique's intervals from the pool before iterating
            // ("Getting Multiple Patterns", Section 3).
            let member_set: std::collections::HashSet<usize> =
                clique.members.iter().copied().collect();
            pool = pool
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !member_set.contains(i))
                .map(|(_, wi)| wi)
                .collect();
            if pattern.n_streams() >= self.config.min_streams {
                patterns.push(pattern);
            }
        }
        patterns
    }

    /// Parallel driver: mines several terms of a collection concurrently
    /// (terms are independent). Results are returned in the order of the
    /// input terms; the output shape implements
    /// [`crate::PatternSource`], so it can be handed to the search engine's
    /// index builder directly.
    pub fn mine_collection_parallel(
        &self,
        collection: &Collection,
        terms: &[TermId],
        n_threads: usize,
    ) -> Vec<(TermId, Vec<CombinatorialPattern>)> {
        crate::parallel_map(terms.len(), n_threads, |i| {
            let term = terms[i];
            (term, self.mine_collection(collection, term))
        })
    }

    /// Convenience: the single highest-scoring pattern for a term (the HSS
    /// problem, Problem 1 of the paper).
    pub fn top_pattern(
        &self,
        collection: &Collection,
        term: TermId,
    ) -> Option<CombinatorialPattern> {
        let mut limited = self.clone();
        limited.config.max_patterns = 1;
        limited.mine_collection(collection, term).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_corpus::CollectionBuilder;
    use stb_geo::GeoPoint;
    use std::collections::HashMap;

    /// Builds a collection where the term "storm" bursts in streams 0 and 1
    /// during timestamps 10..=12, and stream 2 stays flat.
    fn bursty_collection() -> (Collection, TermId) {
        let mut b = CollectionBuilder::new(30);
        let storm = b.dict_mut().intern("storm");
        let calm = b.dict_mut().intern("calm");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(50.0, 50.0));
        for ts in 0..30 {
            for &s in &[s0, s1, s2] {
                let mut counts = HashMap::new();
                counts.insert(calm, 5);
                // Background occurrence of "storm" everywhere.
                counts.insert(storm, 1);
                b.add_document(s, ts, counts);
            }
        }
        for ts in 10..=12 {
            for &s in &[s0, s1] {
                let mut counts = HashMap::new();
                counts.insert(storm, 40);
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), storm)
    }

    #[test]
    fn detects_simultaneous_burst_across_streams() {
        let (c, storm) = bursty_collection();
        let patterns = STComb::new().mine_collection(&c, storm);
        assert!(!patterns.is_empty());
        let top = &patterns[0];
        assert_eq!(top.streams, vec![StreamId(0), StreamId(1)]);
        assert!(top.timeframe.start >= 9 && top.timeframe.start <= 11);
        assert!(top.timeframe.end >= 11 && top.timeframe.end <= 13);
        assert!(top.score > 1.0);
    }

    #[test]
    fn parallel_driver_matches_serial_mining() {
        let (c, storm) = bursty_collection();
        let calm = c.dict().get("calm").unwrap();
        let miner = STComb::new();
        let par = miner.mine_collection_parallel(&c, &[storm, calm], 3);
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].0, storm);
        assert_eq!(par[1].0, calm);
        assert_eq!(par[0].1, miner.mine_collection(&c, storm));
        assert!(par[1].1.is_empty());
    }

    #[test]
    fn top_pattern_matches_first_of_mine() {
        let (c, storm) = bursty_collection();
        let all = STComb::new().mine_collection(&c, storm);
        let top = STComb::new().top_pattern(&c, storm).unwrap();
        assert_eq!(all[0], top);
    }

    #[test]
    fn flat_term_produces_no_patterns() {
        let (c, _) = bursty_collection();
        let calm = c.dict().get("calm").unwrap();
        let patterns = STComb::new().mine_collection(&c, calm);
        assert!(patterns.is_empty());
    }

    #[test]
    fn patterns_use_each_interval_once() {
        let intervals = vec![
            WeightedInterval::new(TimeInterval::new(0, 5), 0.8, 0),
            WeightedInterval::new(TimeInterval::new(2, 6), 0.7, 1),
            WeightedInterval::new(TimeInterval::new(10, 15), 0.5, 0),
            WeightedInterval::new(TimeInterval::new(11, 14), 0.4, 2),
        ];
        let patterns = STComb::new().mine_intervals(&intervals);
        assert_eq!(patterns.len(), 2);
        assert!((patterns[0].score - 1.5).abs() < 1e-12);
        assert!((patterns[1].score - 0.9).abs() < 1e-12);
        // Each pattern draws from disjoint interval sets.
        let total_intervals: usize = patterns.iter().map(|p| p.intervals.len()).sum();
        assert_eq!(total_intervals, 4);
    }

    #[test]
    fn max_patterns_limits_output() {
        let intervals: Vec<WeightedInterval> = (0..8)
            .map(|i| WeightedInterval::new(TimeInterval::new(i * 10, i * 10 + 3), 0.5, i))
            .collect();
        let config = STCombConfig {
            max_patterns: 3,
            ..Default::default()
        };
        let patterns = STComb::with_config(config).mine_intervals(&intervals);
        assert_eq!(patterns.len(), 3);
    }

    #[test]
    fn min_streams_filters_small_patterns() {
        let intervals = vec![
            WeightedInterval::new(TimeInterval::new(0, 5), 0.9, 0),
            WeightedInterval::new(TimeInterval::new(1, 4), 0.3, 1),
            WeightedInterval::new(TimeInterval::new(20, 25), 0.8, 2),
        ];
        let config = STCombConfig {
            min_streams: 2,
            ..Default::default()
        };
        let patterns = STComb::with_config(config).mine_intervals(&intervals);
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].n_streams(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(STComb::new().mine_intervals(&[]).is_empty());
        assert!(STComb::new().mine_series(&[]).is_empty());
    }

    #[test]
    fn pattern_timeframe_is_common_segment_of_member_intervals() {
        let (c, storm) = bursty_collection();
        for p in STComb::new().mine_collection(&c, storm) {
            for (_, interval, _) in &p.intervals {
                assert!(interval.contains(p.timeframe.start));
                assert!(interval.contains(p.timeframe.end));
            }
        }
    }
}
