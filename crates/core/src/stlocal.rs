//! `STLocal`: regional spatiotemporal patterns via streaming maximal windows
//! (Section 4, Algorithm 2).
//!
//! `STLocal` processes a collection one snapshot (timestamp) at a time. For
//! every new snapshot it:
//!
//! 1. computes the per-stream burstiness `B(t, D_x[i]) = observed − expected`
//!    (Eq. 7) using a pluggable expected-frequency baseline,
//! 2. runs `R-Bursty` to find the bursty rectangles of the snapshot
//!    (Algorithm 1),
//! 3. starts a score *sequence* for every newly seen bursty region, appends
//!    the region's current r-score to every tracked sequence, and
//! 4. maintains the maximal spatiotemporal windows of every sequence with
//!    the online Ruzzo–Tompa algorithm (`GetMax`), retiring sequences whose
//!    running total drops below zero (they can never again extend a maximal
//!    window).
//!
//! One `STLocal` instance tracks one term; terms are independent, so a
//! driver can process many terms in parallel (see [`STLocal::mine_collection_parallel`]).

use crate::pattern::RegionalPattern;
use stb_corpus::{Collection, StreamId, TermId};
use stb_discrepancy::{RBursty, RectKernel, WPoint};
use stb_geo::{Mbr, Point2D, Rect};
use stb_timeseries::{BaselineModel, OnlineMaxSeg, TimeInterval};

/// Choice of expected-frequency baseline `E_x[i][t]` (see
/// [`stb_timeseries::baseline`]). The paper leaves this open; the default is
/// the running mean of all history, which is also the paper's default
/// suggestion.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineKind {
    /// Mean of all observations so far.
    RunningMean,
    /// Mean of the last `n` observations.
    SlidingWindow(usize),
    /// Exponentially weighted moving average with the given smoothing factor.
    Ewma(f64),
    /// Seasonal mean with the given period length.
    Seasonal(usize),
}

/// Configuration of the `STLocal` miner.
#[derive(Debug, Clone)]
pub struct STLocalConfig {
    /// Expected-frequency baseline used for the per-stream burstiness.
    pub baseline: BaselineKind,
    /// Minimum r-score for a rectangle to be reported by R-Bursty. The paper
    /// uses 0 (strictly positive); raising it suppresses noise rectangles.
    pub min_rectangle_score: f64,
    /// Minimum w-score for a maximal window to be reported as a pattern.
    pub min_window_score: f64,
    /// A member stream is reported as *included* in a pattern only if its
    /// total burstiness contribution within the window exceeds this fraction
    /// of the strongest member's contribution. This implements the paper's
    /// remark (Section 4, "Discussion on proximity") that the non-bursty
    /// "false positives" contained in a bursty rectangle are remembered and
    /// ultimately excluded from the pattern. Set to 0 to keep every member
    /// with any positive contribution.
    pub min_member_contribution_ratio: f64,
    /// Exact maximum-weight rectangle kernel driving every R-Bursty
    /// extraction round (per snapshot, per term). The default
    /// [`RectKernel::Tree`] is the `O(m^2 log m)` DGM-style kernel; the
    /// `O(m^3)` [`RectKernel::Sweep`] is kept for A/B validation and for
    /// tiny collections where its lower constants win.
    pub rect_kernel: RectKernel,
}

impl Default for STLocalConfig {
    fn default() -> Self {
        Self {
            baseline: BaselineKind::RunningMean,
            min_rectangle_score: 0.0,
            min_window_score: 0.0,
            min_member_contribution_ratio: 0.05,
            rect_kernel: RectKernel::default(),
        }
    }
}

/// Runtime statistics collected while streaming, matching the quantities the
/// paper reports in Figures 5 and 6.
#[derive(Debug, Clone, Default)]
pub struct STLocalStats {
    /// Number of bursty rectangles found at each processed timestamp
    /// (Figure 5 histogram input).
    pub rectangles_per_timestamp: Vec<usize>,
    /// Number of open (still tracked) spatiotemporal windows after each
    /// processed timestamp (Figure 6).
    pub open_windows_per_timestamp: Vec<usize>,
    /// Number of active region sequences after each processed timestamp.
    pub active_sequences_per_timestamp: Vec<usize>,
}

/// A tracked region: the set of streams it covers, its rectangle, and the
/// online maximal-segment state of its r-score sequence.
#[derive(Debug, Clone)]
struct RegionSequence {
    /// Sorted stream indices inside the region (identity of the region).
    members: Vec<usize>,
    /// Per member, the prefix sums of its burstiness contributions over the
    /// sequence's lifetime (`contrib_prefix[m][k]` = contribution of member
    /// `m` over the first `k` appended snapshots). Used to exclude, per
    /// reported window, the member streams that did not contribute positive
    /// burstiness — the "false positives" the paper's Section 4 discussion
    /// says are remembered and ultimately excluded from each pattern.
    contrib_prefix: Vec<Vec<f64>>,
    /// The rectangle reported by R-Bursty when the region was first seen.
    rect: Rect,
    /// Timestamp at which the sequence started.
    start_ts: usize,
    /// Online Ruzzo–Tompa state over the region's r-scores.
    maxseg: OnlineMaxSeg,
}

impl RegionSequence {
    fn windows(&self, min_score: f64, min_member_ratio: f64) -> Vec<RegionalPattern> {
        self.maxseg
            .maximal_segments()
            .into_iter()
            .filter(|seg| seg.score > min_score)
            .map(|seg| {
                // Contributing streams of this window: members whose total
                // burstiness within the window is positive and not
                // negligible compared to the strongest contributor.
                let contributions: Vec<f64> = self
                    .contrib_prefix
                    .iter()
                    .map(|prefix| prefix[seg.end() + 1] - prefix[seg.start()])
                    .collect();
                let max_contribution = contributions.iter().copied().fold(0.0f64, f64::max);
                let cutoff = max_contribution * min_member_ratio;
                let core: Vec<StreamId> = self
                    .members
                    .iter()
                    .zip(&contributions)
                    .filter(|(_, &c)| c > 0.0 && c >= cutoff)
                    .map(|(&i, _)| StreamId(i as u32))
                    .collect();
                RegionalPattern::with_region(
                    self.rect,
                    core,
                    self.members.iter().map(|&i| StreamId(i as u32)).collect(),
                    TimeInterval::new(self.start_ts + seg.start(), self.start_ts + seg.end()),
                    seg.score,
                )
            })
            .collect()
    }
}

/// The streaming `STLocal` miner for a single term.
///
/// # Example
///
/// Stream per-snapshot frequencies for two co-located streams that burst
/// together at timestamps 2..=4 while a distant third stays flat; `STLocal`
/// reports a regional pattern covering the bursty pair:
///
/// ```
/// use stb_core::{STLocal, STLocalConfig};
/// use stb_geo::Point2D;
///
/// let positions = vec![
///     Point2D::new(0.0, 0.0),
///     Point2D::new(1.0, 1.0),
///     Point2D::new(100.0, 100.0),
/// ];
/// let mut miner = STLocal::new(positions, STLocalConfig::default());
/// for ts in 0..8 {
///     let f = if (2..=4).contains(&ts) { 10.0 } else { 1.0 };
///     miner.step(&[f, f, 1.0]); // one frequency per stream
/// }
/// let top = miner.top_pattern().expect("burst detected");
/// assert_eq!(top.streams.len(), 2);
/// assert!(top.timeframe.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct STLocal {
    config: STLocalConfig,
    positions: Vec<Point2D>,
    baselines: Vec<BaselineState>,
    sequences: Vec<RegionSequence>,
    retired: Vec<RegionalPattern>,
    timestamp: usize,
    stats: STLocalStats,
}

/// Concrete baseline state instantiated from a [`BaselineKind`].
#[derive(Debug, Clone)]
enum BaselineState {
    RunningMean(stb_timeseries::RunningMean),
    SlidingWindow(stb_timeseries::SlidingWindowMean),
    Ewma(stb_timeseries::Ewma),
    Seasonal(stb_timeseries::Seasonal),
}

impl BaselineState {
    fn new(kind: &BaselineKind) -> Self {
        match kind {
            BaselineKind::RunningMean => {
                BaselineState::RunningMean(stb_timeseries::RunningMean::new())
            }
            BaselineKind::SlidingWindow(w) => {
                BaselineState::SlidingWindow(stb_timeseries::SlidingWindowMean::new(*w))
            }
            BaselineKind::Ewma(a) => BaselineState::Ewma(stb_timeseries::Ewma::new(*a)),
            BaselineKind::Seasonal(p) => BaselineState::Seasonal(stb_timeseries::Seasonal::new(*p)),
        }
    }

    fn expected(&self) -> Option<f64> {
        match self {
            BaselineState::RunningMean(m) => m.expected(),
            BaselineState::SlidingWindow(m) => m.expected(),
            BaselineState::Ewma(m) => m.expected(),
            BaselineState::Seasonal(m) => m.expected(),
        }
    }

    fn observe(&mut self, v: f64) {
        match self {
            BaselineState::RunningMean(m) => m.observe(v),
            BaselineState::SlidingWindow(m) => m.observe(v),
            BaselineState::Ewma(m) => m.observe(v),
            BaselineState::Seasonal(m) => m.observe(v),
        }
    }
}

impl STLocal {
    /// Creates a miner for streams at the given map positions (one position
    /// per stream, indexed by stream index).
    pub fn new(positions: Vec<Point2D>, config: STLocalConfig) -> Self {
        let baselines = positions
            .iter()
            .map(|_| BaselineState::new(&config.baseline))
            .collect();
        Self {
            config,
            positions,
            baselines,
            sequences: Vec::new(),
            retired: Vec::new(),
            timestamp: 0,
            stats: STLocalStats::default(),
        }
    }

    /// Number of streams the miner was configured with.
    pub fn n_streams(&self) -> usize {
        self.positions.len()
    }

    /// Number of snapshots processed so far.
    pub fn timestamps_processed(&self) -> usize {
        self.timestamp
    }

    /// The streaming statistics collected so far.
    pub fn stats(&self) -> &STLocalStats {
        &self.stats
    }

    /// Processes one snapshot: the observed frequency of the term in every
    /// stream at the current timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len()` does not match the number of streams.
    pub fn step(&mut self, observed: &[f64]) {
        assert_eq!(
            observed.len(),
            self.positions.len(),
            "snapshot must provide one frequency per stream"
        );
        // 1. Per-stream burstiness (Eq. 7).
        let mut burstiness = vec![0.0f64; observed.len()];
        for (x, &obs) in observed.iter().enumerate() {
            burstiness[x] = match self.baselines[x].expected() {
                Some(e) => obs - e,
                None => 0.0,
            };
            self.baselines[x].observe(obs);
        }

        // 2. Bursty rectangles of this snapshot (Algorithm 1). Fast path:
        //    a bursty rectangle needs a strictly positive r-score (R-Bursty
        //    clamps its minimum score at 0), which requires at least one
        //    stream with positive burstiness — so a quiet snapshot (e.g. a
        //    tick in which a streamed term does not occur at all) skips the
        //    rectangle search entirely. This is what keeps the live ingest
        //    pipeline's "advance every tracked term each tick" step cheap.
        let rects = if burstiness.iter().any(|&b| b > 0.0) {
            let points: Vec<WPoint> = self
                .positions
                .iter()
                .zip(&burstiness)
                .map(|(p, &w)| WPoint::at(*p, w))
                .collect();
            let rbursty = RBursty::new()
                .with_min_score(self.config.min_rectangle_score)
                .with_kernel(self.config.rect_kernel);
            rbursty.find(&points)
        } else {
            Vec::new()
        };
        self.stats.rectangles_per_timestamp.push(rects.len());

        // 3. Start sequences for regions not already tracked (Line 7 of
        //    Algorithm 2). Region identity is its set of member streams.
        for rect in &rects {
            let mut members = rect.members.clone();
            members.sort_unstable();
            let already_tracked = self.sequences.iter().any(|s| s.members == members);
            if !already_tracked {
                let n_members = members.len();
                self.sequences.push(RegionSequence {
                    members,
                    contrib_prefix: vec![vec![0.0]; n_members],
                    rect: rect.rect,
                    start_ts: self.timestamp,
                    maxseg: OnlineMaxSeg::new(),
                });
            }
        }

        // 4. Append the current r-score to every tracked sequence (Line 9)
        //    and retire sequences whose running total went negative
        //    (Lines 11-12).
        let min_window_score = self.config.min_window_score;
        let min_member_ratio = self.config.min_member_contribution_ratio;
        let mut still_active = Vec::with_capacity(self.sequences.len());
        for mut seq in std::mem::take(&mut self.sequences) {
            let r_score: f64 = seq.members.iter().map(|&x| burstiness[x]).sum();
            for (m, &x) in seq.members.iter().enumerate() {
                let last = *seq.contrib_prefix[m].last().expect("prefix starts with 0");
                seq.contrib_prefix[m].push(last + burstiness[x]);
            }
            seq.maxseg.push(r_score);
            if seq.maxseg.total() < 0.0 {
                self.retired
                    .extend(seq.windows(min_window_score, min_member_ratio));
            } else {
                still_active.push(seq);
            }
        }
        self.sequences = still_active;

        let open_windows: usize = self
            .sequences
            .iter()
            .map(|s| s.maxseg.candidate_count())
            .sum();
        self.stats.open_windows_per_timestamp.push(open_windows);
        self.stats
            .active_sequences_per_timestamp
            .push(self.sequences.len());
        self.timestamp += 1;
    }

    /// The maximal windows accumulated so far (retired sequences plus the
    /// current windows of the still-active sequences), strongest first.
    pub fn patterns(&self) -> Vec<RegionalPattern> {
        let mut out = self.retired.clone();
        for seq in &self.sequences {
            out.extend(seq.windows(
                self.config.min_window_score,
                self.config.min_member_contribution_ratio,
            ));
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Consumes the miner and returns all maximal windows, strongest first.
    pub fn finish(self) -> Vec<RegionalPattern> {
        self.patterns()
    }

    /// The single strongest pattern seen so far, if any.
    pub fn top_pattern(&self) -> Option<RegionalPattern> {
        self.patterns().into_iter().next()
    }

    /// Convenience driver: streams an entire collection for one term and
    /// returns the mined patterns with the streaming statistics.
    pub fn mine_collection(
        collection: &Collection,
        term: TermId,
        config: STLocalConfig,
    ) -> (Vec<RegionalPattern>, STLocalStats) {
        let mut miner = STLocal::new(collection.positions(), config);
        for ts in 0..collection.timeline_len() {
            let snapshot = collection.term_snapshot(term, ts);
            miner.step(&snapshot.frequencies);
        }
        let stats = miner.stats.clone();
        (miner.finish(), stats)
    }

    /// Parallel driver: mines several terms of a collection concurrently
    /// (terms are independent, as the paper notes when discussing the
    /// complexity of `STLocal`). Results are returned in the order of the
    /// input terms.
    pub fn mine_collection_parallel(
        collection: &Collection,
        terms: &[TermId],
        config: &STLocalConfig,
        n_threads: usize,
    ) -> Vec<(TermId, Vec<RegionalPattern>)> {
        crate::parallel_map(terms.len(), n_threads, |i| {
            let term = terms[i];
            let (patterns, _) = STLocal::mine_collection(collection, term, config.clone());
            (term, patterns)
        })
    }

    /// The minimum bounding rectangle of the streams of a pattern, expressed
    /// in the miner's map coordinates, together with the number of streams
    /// (of all streams known to the miner) that fall inside it. Used by the
    /// Table 1 experiment for the "# countries in MBR" column.
    pub fn mbr_stream_count(&self, pattern_streams: &[StreamId]) -> usize {
        let mbr = Mbr::from_points(pattern_streams.iter().map(|s| self.positions[s.index()]));
        mbr.count_contained(&self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Positions forming two well-separated clusters of three streams each.
    fn cluster_positions() -> Vec<Point2D> {
        vec![
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 0.5),
            Point2D::new(0.5, 1.0),
            Point2D::new(100.0, 100.0),
            Point2D::new(101.0, 100.5),
            Point2D::new(100.5, 101.0),
        ]
    }

    /// Streams a synthetic term: background frequency 1 everywhere, with a
    /// burst of `peak` in the given streams during `burst_ts`.
    fn run_scenario(
        positions: Vec<Point2D>,
        timeline: usize,
        burst_streams: &[usize],
        burst_ts: std::ops::Range<usize>,
        peak: f64,
    ) -> STLocal {
        let mut miner = STLocal::new(positions.clone(), STLocalConfig::default());
        for ts in 0..timeline {
            let mut obs = vec![1.0; positions.len()];
            if burst_ts.contains(&ts) {
                for &s in burst_streams {
                    obs[s] = peak;
                }
            }
            miner.step(&obs);
        }
        miner
    }

    #[test]
    fn detects_localized_burst() {
        let miner = run_scenario(cluster_positions(), 30, &[0, 1, 2], 10..15, 20.0);
        let top = miner.top_pattern().expect("a pattern should be found");
        assert_eq!(
            top.streams,
            vec![StreamId(0), StreamId(1), StreamId(2)],
            "the pattern should cover exactly the bursty cluster"
        );
        assert!(top.timeframe.start >= 10 && top.timeframe.start <= 11);
        assert!(top.timeframe.end >= 13 && top.timeframe.end <= 15);
        assert!(top.score > 0.0);
    }

    #[test]
    fn rect_kernel_choice_does_not_change_mined_patterns() {
        let mut reference: Option<Vec<RegionalPattern>> = None;
        for kernel in [RectKernel::Tree, RectKernel::Sweep] {
            let config = STLocalConfig {
                rect_kernel: kernel,
                ..STLocalConfig::default()
            };
            let mut miner = STLocal::new(cluster_positions(), config);
            for ts in 0..30 {
                let mut obs = vec![1.0; 6];
                if (10..15).contains(&ts) {
                    for s in 0..3 {
                        obs[s] = 20.0;
                    }
                }
                miner.step(&obs);
            }
            let patterns = miner.finish();
            assert!(!patterns.is_empty(), "{kernel:?}");
            match &reference {
                None => reference = Some(patterns),
                Some(expected) => {
                    assert_eq!(expected.len(), patterns.len(), "{kernel:?}");
                    for (a, b) in expected.iter().zip(&patterns) {
                        assert_eq!(a.streams, b.streams, "{kernel:?}");
                        assert_eq!(a.timeframe, b.timeframe, "{kernel:?}");
                        assert!((a.score - b.score).abs() < 1e-9, "{kernel:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn quiet_stream_produces_no_patterns() {
        let positions = cluster_positions();
        let mut miner = STLocal::new(positions, STLocalConfig::default());
        for _ in 0..20 {
            miner.step(&[2.0; 6]);
        }
        assert!(miner.top_pattern().is_none());
        assert!(miner.finish().is_empty());
    }

    #[test]
    fn two_separate_regions_yield_two_patterns() {
        let positions = cluster_positions();
        let mut miner = STLocal::new(positions.clone(), STLocalConfig::default());
        for ts in 0..40 {
            let mut obs = vec![1.0; positions.len()];
            if (8..12).contains(&ts) {
                for s in 0..3 {
                    obs[s] = 15.0;
                }
            }
            if (25..30).contains(&ts) {
                for s in 3..6 {
                    obs[s] = 15.0;
                }
            }
            miner.step(&obs);
        }
        let patterns = miner.finish();
        assert!(patterns.len() >= 2);
        let first_cluster: Vec<StreamId> = vec![StreamId(0), StreamId(1), StreamId(2)];
        let second_cluster: Vec<StreamId> = vec![StreamId(3), StreamId(4), StreamId(5)];
        assert!(patterns.iter().any(|p| p.streams == first_cluster));
        assert!(patterns.iter().any(|p| p.streams == second_cluster));
    }

    #[test]
    fn stats_are_recorded_per_timestamp() {
        let miner = run_scenario(cluster_positions(), 25, &[0, 1], 5..8, 10.0);
        let stats = miner.stats();
        assert_eq!(stats.rectangles_per_timestamp.len(), 25);
        assert_eq!(stats.open_windows_per_timestamp.len(), 25);
        assert_eq!(stats.active_sequences_per_timestamp.len(), 25);
        // During the burst at least one rectangle must be found.
        assert!(stats.rectangles_per_timestamp[5..8].iter().any(|&c| c > 0));
        // No burstiness on the very first timestamp (no history yet).
        assert_eq!(stats.rectangles_per_timestamp[0], 0);
    }

    #[test]
    fn sequences_are_pruned_after_burst_fades() {
        let miner = run_scenario(cluster_positions(), 60, &[0, 1, 2], 10..13, 25.0);
        let stats = miner.stats();
        // Long after the burst the negative r-scores must have retired the
        // sequence.
        assert_eq!(*stats.active_sequences_per_timestamp.last().unwrap(), 0);
    }

    #[test]
    fn pattern_timeframe_is_within_processed_range() {
        let miner = run_scenario(cluster_positions(), 30, &[3, 4, 5], 20..25, 12.0);
        for p in miner.patterns() {
            assert!(p.timeframe.end < 30);
            assert!(p.timeframe.start <= p.timeframe.end);
        }
    }

    #[test]
    fn mine_collection_driver_works() {
        use stb_corpus::CollectionBuilder;
        use stb_geo::GeoPoint;
        use std::collections::HashMap;

        let mut b = CollectionBuilder::new(20);
        let quake = b.dict_mut().intern("quake");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(60.0, 60.0));
        for ts in 0..20 {
            for &s in &[s0, s1, s2] {
                let mut counts = HashMap::new();
                counts.insert(quake, 1);
                b.add_document(s, ts, counts);
            }
        }
        for ts in 8..11 {
            for &s in &[s0, s1] {
                let mut counts = HashMap::new();
                counts.insert(quake, 30);
                b.add_document(s, ts, counts);
            }
        }
        let c = b.build();
        let (patterns, stats) = STLocal::mine_collection(&c, quake, STLocalConfig::default());
        assert!(!patterns.is_empty());
        assert_eq!(stats.rectangles_per_timestamp.len(), 20);
        assert_eq!(patterns[0].streams, vec![s0, s1]);
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        use stb_corpus::CollectionBuilder;
        use stb_geo::GeoPoint;
        use std::collections::HashMap;

        let mut b = CollectionBuilder::new(15);
        let t1 = b.dict_mut().intern("alpha");
        let t2 = b.dict_mut().intern("beta");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(2.0, 2.0));
        for ts in 0..15 {
            for &s in &[s0, s1] {
                let mut counts = HashMap::new();
                counts.insert(t1, if ts == 7 && s == s0 { 20 } else { 1 });
                counts.insert(t2, if ts == 3 && s == s1 { 25 } else { 1 });
                b.add_document(s, ts, counts);
            }
        }
        let c = b.build();
        let config = STLocalConfig::default();
        let par = STLocal::mine_collection_parallel(&c, &[t1, t2], &config, 2);
        for (term, patterns) in par {
            let (seq, _) = STLocal::mine_collection(&c, term, config.clone());
            assert_eq!(patterns.len(), seq.len());
            for (a, b) in patterns.iter().zip(&seq) {
                assert_eq!(a.streams, b.streams);
                assert_eq!(a.timeframe, b.timeframe);
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mbr_count_covers_intermediate_streams() {
        let positions = vec![
            Point2D::new(0.0, 0.0),
            Point2D::new(10.0, 10.0),
            Point2D::new(5.0, 5.0),   // inside the MBR of 0 and 1
            Point2D::new(50.0, 50.0), // outside
        ];
        let miner = STLocal::new(positions, STLocalConfig::default());
        let count = miner.mbr_stream_count(&[StreamId(0), StreamId(1)]);
        assert_eq!(count, 3);
    }

    #[test]
    #[should_panic]
    fn wrong_snapshot_size_panics() {
        let mut miner = STLocal::new(cluster_positions(), STLocalConfig::default());
        miner.step(&[1.0, 2.0]);
    }
}
