//! Pattern-quality metrics (Section 6.2.2 and 6.3 of the paper).
//!
//! * [`jaccard_similarity`] — `|Y ∩ Y'| / |Y ∪ Y'|` between the retrieved and
//!   the ground-truth stream sets of a pattern ("JaccardSim").
//! * [`start_error`] / [`end_error`] — absolute difference between the
//!   retrieved and ground-truth first/last timestamp of a pattern's
//!   timeframe.
//! * [`topk_overlap`] — size of the overlap of two top-k result lists
//!   divided by k, used to compare the result sets of TB / STLocal / STComb
//!   in the Bursty Documents experiment.

use stb_corpus::StreamId;
use stb_timeseries::TimeInterval;
use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity of two stream sets (duplicates ignored). Returns 1 for
/// two empty sets.
pub fn jaccard_similarity(retrieved: &[StreamId], truth: &[StreamId]) -> f64 {
    let a: HashSet<StreamId> = retrieved.iter().copied().collect();
    let b: HashSet<StreamId> = truth.iter().copied().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(&b).count();
    let union = a.union(&b).count();
    inter as f64 / union as f64
}

/// Absolute error between the retrieved and ground-truth first timestamps.
pub fn start_error(retrieved: TimeInterval, truth: TimeInterval) -> usize {
    retrieved.start.abs_diff(truth.start)
}

/// Absolute error between the retrieved and ground-truth last timestamps.
pub fn end_error(retrieved: TimeInterval, truth: TimeInterval) -> usize {
    retrieved.end.abs_diff(truth.end)
}

/// Overlap of two top-k lists: `|A ∩ B| / k`, where `k` is the length of the
/// longer list. Returns 1 for two empty lists.
pub fn topk_overlap<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let k = a.len().max(b.len());
    if k == 0 {
        return 1.0;
    }
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    sa.intersection(&sb).count() as f64 / k as f64
}

/// Precision of a result list against a set of relevant items:
/// `|results ∩ relevant| / |results|`. Returns 1 for an empty result list.
pub fn precision<T: Eq + Hash>(results: &[T], relevant: &HashSet<T>) -> f64 {
    if results.is_empty() {
        return 1.0;
    }
    let hits = results.iter().filter(|r| relevant.contains(r)).count();
    hits as f64 / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Vec<StreamId> {
        ids.iter().map(|&i| StreamId(i)).collect()
    }

    #[test]
    fn jaccard_identical_sets() {
        assert_eq!(jaccard_similarity(&s(&[1, 2, 3]), &s(&[3, 2, 1])), 1.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        assert_eq!(jaccard_similarity(&s(&[1, 2]), &s(&[3, 4])), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // {1,2,3} vs {2,3,4}: intersection 2, union 4.
        assert!((jaccard_similarity(&s(&[1, 2, 3]), &s(&[2, 3, 4])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert_eq!(jaccard_similarity(&s(&[1, 1, 2]), &s(&[1, 2, 2])), 1.0);
    }

    #[test]
    fn jaccard_empty_sets() {
        assert_eq!(jaccard_similarity(&[], &[]), 1.0);
        assert_eq!(jaccard_similarity(&s(&[1]), &[]), 0.0);
    }

    #[test]
    fn start_end_errors() {
        let truth = TimeInterval::new(10, 20);
        let retrieved = TimeInterval::new(13, 18);
        assert_eq!(start_error(retrieved, truth), 3);
        assert_eq!(end_error(retrieved, truth), 2);
        assert_eq!(start_error(truth, truth), 0);
        // Errors are symmetric in direction.
        assert_eq!(start_error(TimeInterval::new(7, 20), truth), 3);
    }

    #[test]
    fn topk_overlap_values() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![3, 4, 5, 6, 7];
        assert!((topk_overlap(&a, &b) - 0.6).abs() < 1e-12);
        assert_eq!(topk_overlap(&a, &a), 1.0);
        assert_eq!(topk_overlap::<i32>(&[], &[]), 1.0);
        assert_eq!(topk_overlap(&a, &[]), 0.0);
    }

    #[test]
    fn precision_values() {
        let relevant: HashSet<i32> = [1, 2, 3, 4].into_iter().collect();
        assert!((precision(&[1, 2, 9, 8], &relevant) - 0.5).abs() < 1e-12);
        assert_eq!(precision(&[1, 2], &relevant), 1.0);
        assert_eq!(precision::<i32>(&[], &relevant), 1.0);
    }
}
