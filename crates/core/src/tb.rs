//! The `TB` baseline: temporal-only burstiness over the merged stream.
//!
//! `TB` is the search approach of Lappas et al. (KDD 2009) that the paper
//! compares against in the Bursty Documents experiment (Section 6.3): it
//! ignores where documents come from, merges every stream into a single
//! document sequence, and mines the temporal bursts of that merged sequence.
//! Each temporal burst becomes a pattern that covers *all* streams (since
//! the origin of documents is disregarded) over the burst's timeframe.

use crate::pattern::CombinatorialPattern;
use stb_corpus::{Collection, StreamId, TermId};
use stb_timeseries::temporal_burst::bursty_intervals_with_threshold;

/// Configuration of the `TB` baseline.
#[derive(Debug, Clone)]
pub struct TBConfig {
    /// Minimum temporal burstiness `B_T` for a burst to become a pattern.
    pub min_interval_score: f64,
    /// Maximum number of patterns (bursts) reported per term.
    pub max_patterns: usize,
}

impl Default for TBConfig {
    fn default() -> Self {
        Self {
            min_interval_score: 0.0,
            max_patterns: 10,
        }
    }
}

/// The temporal-only baseline miner.
#[derive(Debug, Clone, Default)]
pub struct TB {
    config: TBConfig,
}

impl TB {
    /// Creates a baseline miner with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a baseline miner with an explicit configuration.
    pub fn with_config(config: TBConfig) -> Self {
        Self { config }
    }

    /// Mines temporal-burst patterns for one term: the per-stream series are
    /// merged into one and its bursty intervals are reported as patterns
    /// covering every stream of the collection.
    pub fn mine_collection(
        &self,
        collection: &Collection,
        term: TermId,
    ) -> Vec<CombinatorialPattern> {
        let merged = collection.term_merged_series(term);
        let all_streams: Vec<StreamId> = (0..collection.n_streams())
            .map(|i| StreamId(i as u32))
            .collect();
        self.mine_merged_series(&merged, &all_streams)
    }

    /// Mines temporal-burst patterns from an explicit merged frequency
    /// series; the returned patterns cover the given stream set.
    pub fn mine_merged_series(
        &self,
        merged: &[f64],
        streams: &[StreamId],
    ) -> Vec<CombinatorialPattern> {
        let mut bursts = bursty_intervals_with_threshold(merged, self.config.min_interval_score);
        bursts.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        bursts
            .into_iter()
            .take(self.config.max_patterns)
            .map(|b| {
                let intervals = streams.iter().map(|&s| (s, b.interval, b.score)).collect();
                CombinatorialPattern::new(streams.to_vec(), b.interval, b.score, intervals)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use stb_corpus::CollectionBuilder;
    use stb_geo::GeoPoint;
    use std::collections::HashMap;

    fn collection_with_global_burst() -> (Collection, TermId) {
        let mut b = CollectionBuilder::new(20);
        let crisis = b.dict_mut().intern("crisis");
        let streams: Vec<StreamId> = (0..4)
            .map(|i| b.add_stream(&format!("S{i}"), GeoPoint::new(i as f64 * 10.0, 0.0)))
            .collect();
        for ts in 0..20 {
            for &s in &streams {
                let mut counts = HashMap::new();
                counts.insert(crisis, if (8..11).contains(&ts) { 20 } else { 1 });
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), crisis)
    }

    #[test]
    fn detects_burst_on_merged_stream() {
        let (c, crisis) = collection_with_global_burst();
        let patterns = TB::new().mine_collection(&c, crisis);
        assert!(!patterns.is_empty());
        let top = &patterns[0];
        assert_eq!(top.timeframe.start, 8);
        assert_eq!(top.timeframe.end, 10);
        // TB patterns cover every stream of the collection.
        assert_eq!(top.n_streams(), c.n_streams());
    }

    #[test]
    fn pattern_overlaps_any_stream_in_timeframe() {
        let (c, crisis) = collection_with_global_burst();
        let patterns = TB::new().mine_collection(&c, crisis);
        let top = &patterns[0];
        assert!(top.overlaps(StreamId(0), 9));
        assert!(top.overlaps(StreamId(3), 9));
        assert!(!top.overlaps(StreamId(0), 2));
    }

    #[test]
    fn max_patterns_is_respected() {
        let merged: Vec<f64> = (0..50)
            .map(|t| if t % 10 == 0 { 30.0 } else { 1.0 })
            .collect();
        let streams = vec![StreamId(0)];
        let config = TBConfig {
            max_patterns: 2,
            ..Default::default()
        };
        let patterns = TB::with_config(config).mine_merged_series(&merged, &streams);
        assert_eq!(patterns.len(), 2);
        let all = TB::new().mine_merged_series(&merged, &streams);
        assert!(all.len() > 2);
    }

    #[test]
    fn flat_series_gives_no_patterns() {
        let patterns = TB::new().mine_merged_series(&[2.0; 30], &[StreamId(0)]);
        assert!(patterns.is_empty());
    }

    #[test]
    fn patterns_sorted_by_score() {
        let mut merged = vec![1.0; 60];
        for t in 10..13 {
            merged[t] = 50.0;
        }
        merged[40] = 10.0;
        let patterns = TB::new().mine_merged_series(&merged, &[StreamId(0)]);
        assert!(patterns.len() >= 2);
        for w in patterns.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
