//! Maximum-weight clique on interval graphs.
//!
//! Proposition 1 of the paper shows that the Highest-Scoring-Subset problem
//! (find the set of pairwise-overlapping bursty intervals with maximum total
//! burstiness) is exactly the maximum-weight clique problem on the interval
//! graph induced by the intervals. By the Helly property of intervals on a
//! line, a clique of an interval graph is a set of intervals sharing a common
//! point, so the maximum-weight clique can be found with a single sweep over
//! the interval endpoints in `O(n log n)` (Gupta, Lee & Leung, 1982): at
//! every candidate point, the clique weight is the total weight of the
//! intervals covering that point.

use stb_timeseries::TimeInterval;

/// An interval with a weight and an opaque tag identifying its origin
/// (for `STComb`, the stream the interval came from).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedInterval {
    /// The interval on the timeline.
    pub interval: TimeInterval,
    /// The weight of the interval (its temporal burstiness `B_T`).
    pub weight: f64,
    /// Caller-defined tag (e.g. the stream index the interval belongs to).
    pub tag: usize,
}

impl WeightedInterval {
    /// Creates a weighted, tagged interval.
    pub fn new(interval: TimeInterval, weight: f64, tag: usize) -> Self {
        Self {
            interval,
            weight,
            tag,
        }
    }
}

/// A maximum-weight clique of the interval graph.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalClique {
    /// Indices (into the input slice) of the intervals in the clique.
    pub members: Vec<usize>,
    /// The common segment shared by every interval of the clique.
    pub common: TimeInterval,
    /// Total weight of the clique.
    pub weight: f64,
}

/// Finds the maximum-weight clique of the interval graph induced by
/// `intervals` (the `maxClique` module of the paper).
///
/// Returns `None` if the input is empty or the best achievable total weight
/// is not positive (all weights non-positive). Ties are broken towards the
/// earliest common point on the timeline.
pub fn max_weight_interval_clique(intervals: &[WeightedInterval]) -> Option<IntervalClique> {
    if intervals.is_empty() {
        return None;
    }
    // Sweep over events: +weight when an interval starts, -weight one past
    // its end. Candidate clique points are interval start points (the
    // maximum of the coverage function is always attained at one).
    // Intervals are closed, so an interval [s, e] covers every point in
    // s..=e: it contributes +weight at s and -weight at e + 1. All events at
    // the same timestamp are applied before the timestamp is evaluated, so
    // their relative order is irrelevant.
    let mut events: Vec<(usize, f64)> = Vec::with_capacity(intervals.len() * 2);
    for wi in intervals {
        events.push((wi.interval.start, wi.weight));
        events.push((wi.interval.end + 1, -wi.weight));
    }
    events.sort_by_key(|a| a.0);

    let mut active = 0.0f64;
    let mut best: Option<(f64, usize)> = None;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            active += events[i].1;
            i += 1;
        }
        // The coverage function is piecewise constant and changes only at
        // event points, so evaluating every event point (after applying its
        // events) visits every distinct coverage value at its earliest
        // attaining timestamp. With negative weights allowed the maximum may
        // sit right after an interval ends, so end points are candidates too.
        if best.is_none_or(|(w, _)| active > w + 1e-15) {
            best = Some((active, t));
        }
    }

    let (weight, point) = best?;
    if weight <= 0.0 {
        return None;
    }
    let members: Vec<usize> = intervals
        .iter()
        .enumerate()
        .filter(|(_, wi)| wi.interval.contains(point))
        .map(|(i, _)| i)
        .collect();
    let common = members
        .iter()
        .map(|&i| intervals[i].interval)
        .reduce(|a, b| {
            a.intersection(&b)
                .expect("clique intervals share the sweep point")
        })?;
    Some(IntervalClique {
        members,
        common,
        weight,
    })
}

/// Exhaustive maximum-weight clique for small inputs: enumerates every
/// candidate common point. Test oracle for [`max_weight_interval_clique`].
pub fn max_weight_clique_naive(intervals: &[WeightedInterval]) -> Option<IntervalClique> {
    let max_t = intervals.iter().map(|wi| wi.interval.end).max()?;
    let mut best: Option<IntervalClique> = None;
    for point in 0..=max_t {
        let members: Vec<usize> = intervals
            .iter()
            .enumerate()
            .filter(|(_, wi)| wi.interval.contains(point))
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let weight: f64 = members.iter().map(|&i| intervals[i].weight).sum();
        if weight > 0.0 && best.as_ref().is_none_or(|b| weight > b.weight + 1e-15) {
            let common = members
                .iter()
                .map(|&i| intervals[i].interval)
                .reduce(|a, b| a.intersection(&b).unwrap())
                .unwrap();
            best = Some(IntervalClique {
                members,
                common,
                weight,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wi(start: usize, end: usize, weight: f64, tag: usize) -> WeightedInterval {
        WeightedInterval::new(TimeInterval::new(start, end), weight, tag)
    }

    #[test]
    fn empty_input() {
        assert!(max_weight_interval_clique(&[]).is_none());
    }

    #[test]
    fn single_interval() {
        let c = max_weight_interval_clique(&[wi(2, 5, 0.7, 0)]).unwrap();
        assert_eq!(c.members, vec![0]);
        assert_eq!(c.common, TimeInterval::new(2, 5));
        assert!((c.weight - 0.7).abs() < 1e-12);
    }

    #[test]
    fn non_positive_weights_give_none() {
        assert!(max_weight_interval_clique(&[wi(0, 3, 0.0, 0), wi(1, 2, -1.0, 1)]).is_none());
    }

    #[test]
    fn figure2_example_from_paper() {
        // Figure 2 of the paper: four streams with bursty intervals. The
        // highest-scoring subset is {I1, I3, I5, I6} with total 2.1, and the
        // competing subset {I2, I4, I7} scores lower.
        // Reconstruction on a 0..30 timeline:
        //   D1: I1=[2,10] (0.8),  I2=[18,26] (0.5)
        //   D2: I3=[4,12] (0.4),  I4=[20,28] (0.6)
        //   D3: I5=[3,9]  (0.5),  I6 belongs to D4 below
        //   D4: I6=[5,11] (0.4),  I7=[19,25] (0.3)
        let intervals = vec![
            wi(2, 10, 0.8, 1),  // I1
            wi(18, 26, 0.5, 1), // I2
            wi(4, 12, 0.4, 2),  // I3
            wi(20, 28, 0.6, 2), // I4
            wi(3, 9, 0.5, 3),   // I5
            wi(5, 11, 0.4, 4),  // I6
            wi(19, 25, 0.3, 4), // I7
        ];
        let c = max_weight_interval_clique(&intervals).unwrap();
        assert_eq!(c.members, vec![0, 2, 4, 5]);
        assert!((c.weight - 2.1).abs() < 1e-12);
        // The common segment is the intersection of the four intervals.
        assert_eq!(c.common, TimeInterval::new(5, 9));
    }

    #[test]
    fn prefers_heavier_clique_even_if_smaller() {
        let intervals = vec![
            wi(0, 10, 0.2, 0),
            wi(0, 10, 0.2, 1),
            wi(0, 10, 0.2, 2),
            wi(20, 25, 1.0, 3),
        ];
        let c = max_weight_interval_clique(&intervals).unwrap();
        assert_eq!(c.members, vec![3]);
        assert!((c.weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_interval_excluded_from_clique_weight_only_if_disjoint() {
        // A negative-weight interval overlapping the best point still counts
        // (cliques are defined by the point, not by cherry-picking).
        let intervals = vec![wi(0, 5, 2.0, 0), wi(3, 8, -0.5, 1), wi(4, 6, 1.0, 2)];
        let c = max_weight_interval_clique(&intervals).unwrap();
        let naive = max_weight_clique_naive(&intervals).unwrap();
        assert!((c.weight - naive.weight).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_fixed_cases() {
        let cases = vec![
            vec![
                wi(0, 2, 0.5, 0),
                wi(1, 4, 0.6, 1),
                wi(3, 6, 0.9, 2),
                wi(5, 8, 0.1, 3),
            ],
            vec![
                wi(0, 9, 0.1, 0),
                wi(2, 3, 0.7, 1),
                wi(2, 3, 0.7, 2),
                wi(5, 9, 1.2, 3),
            ],
            vec![wi(1, 1, 0.3, 0), wi(1, 1, 0.3, 1), wi(1, 1, 0.3, 2)],
        ];
        for case in cases {
            let fast = max_weight_interval_clique(&case).unwrap();
            let slow = max_weight_clique_naive(&case).unwrap();
            assert!((fast.weight - slow.weight).abs() < 1e-12, "{case:?}");
            assert_eq!(fast.members, slow.members, "{case:?}");
        }
    }

    #[test]
    fn common_segment_is_contained_in_all_members() {
        let intervals = vec![wi(0, 6, 0.4, 0), wi(2, 9, 0.5, 1), wi(4, 11, 0.2, 2)];
        let c = max_weight_interval_clique(&intervals).unwrap();
        for &m in &c.members {
            assert!(intervals[m].interval.contains(c.common.start));
            assert!(intervals[m].interval.contains(c.common.end));
        }
    }

    #[test]
    fn touching_intervals_form_a_clique_at_the_shared_point() {
        let intervals = vec![wi(0, 3, 0.5, 0), wi(3, 6, 0.5, 1)];
        let c = max_weight_interval_clique(&intervals).unwrap();
        assert_eq!(c.members, vec![0, 1]);
        assert_eq!(c.common, TimeInterval::new(3, 3));
        assert!((c.weight - 1.0).abs() < 1e-12);
    }
}
