//! The `Base` baseline (Section 6.2.2).
//!
//! The paper compares its miners against a simple heuristic:
//!
//! 1. compute the per-stream burstiness series (Eq. 7) and binarise it
//!    (positive → 1, otherwise → 0),
//! 2. fill interior gaps of zeros shorter than `ℓ` so short lulls do not
//!    split an interval,
//! 3. take the contiguous runs of ones as the per-stream bursty intervals,
//! 4. visit the streams in a given order; starting from the interval set of
//!    the first stream, merge every later interval into an existing one when
//!    their Jaccard overlap is at least `δ` (replacing the kept interval by
//!    the intersection), otherwise keep it as a new candidate.
//!
//! Each surviving interval, together with the streams whose intervals were
//! merged into it, is reported as a pattern.

use crate::pattern::CombinatorialPattern;
use stb_corpus::{Collection, StreamId, TermId};
use stb_timeseries::{burstiness_series, RunningMean, TimeInterval};

/// Configuration of the `Base` baseline.
#[derive(Debug, Clone)]
pub struct BaseConfig {
    /// Maximum length `ℓ` of an interior zero-gap that is filled with ones.
    pub gap_fill: usize,
    /// Minimum Jaccard overlap `δ` for two intervals to be merged.
    pub delta: f64,
}

impl Default for BaseConfig {
    fn default() -> Self {
        Self {
            gap_fill: 2,
            delta: 0.3,
        }
    }
}

/// The `Base` baseline miner.
#[derive(Debug, Clone, Default)]
pub struct Base {
    config: BaseConfig,
}

/// A candidate pattern during the merge phase.
#[derive(Debug, Clone)]
struct Candidate {
    interval: TimeInterval,
    streams: Vec<StreamId>,
}

impl Base {
    /// Creates a baseline miner with the default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a baseline miner with explicit parameters.
    pub fn with_config(config: BaseConfig) -> Self {
        Self { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &BaseConfig {
        &self.config
    }

    /// Extracts the binarised, gap-filled bursty intervals of one frequency
    /// series.
    pub fn stream_intervals(&self, frequencies: &[f64]) -> Vec<TimeInterval> {
        let mut model = RunningMean::new();
        let burst = burstiness_series(frequencies, &mut model);
        let mut bits: Vec<bool> = burst.iter().map(|&b| b > 0.0).collect();
        self.fill_gaps(&mut bits);
        let mut intervals = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &b) in bits.iter().enumerate() {
            match (start, b) {
                (None, true) => start = Some(i),
                (Some(s), false) => {
                    intervals.push(TimeInterval::new(s, i - 1));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            intervals.push(TimeInterval::new(s, bits.len() - 1));
        }
        intervals
    }

    /// Replaces interior zero-runs of length at most `ℓ` with ones.
    fn fill_gaps(&self, bits: &mut [bool]) {
        if self.config.gap_fill == 0 {
            return;
        }
        let n = bits.len();
        let mut i = 0;
        while i < n {
            if !bits[i] {
                let gap_start = i;
                while i < n && !bits[i] {
                    i += 1;
                }
                let gap_end = i; // exclusive
                let interior = gap_start > 0 && gap_end < n;
                if interior && gap_end - gap_start <= self.config.gap_fill {
                    bits[gap_start..gap_end].iter_mut().for_each(|b| *b = true);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Mines patterns for one term of a collection. Streams are visited in
    /// ascending id order (the paper prescribes "a random order"; a fixed
    /// order keeps results reproducible — callers can shuffle the series
    /// themselves via [`Base::mine_series`] if they want the paper's exact
    /// randomized behaviour).
    pub fn mine_collection(
        &self,
        collection: &Collection,
        term: TermId,
    ) -> Vec<CombinatorialPattern> {
        let series: Vec<(StreamId, Vec<f64>)> = collection
            .streams_with_term(term)
            .into_iter()
            .map(|s| (s, collection.term_stream_series(term, s)))
            .collect();
        self.mine_series(&series)
    }

    /// Mines patterns from explicit per-stream frequency series, visiting
    /// the streams in the order given.
    pub fn mine_series(&self, series: &[(StreamId, Vec<f64>)]) -> Vec<CombinatorialPattern> {
        let mut candidates: Vec<Candidate> = Vec::new();
        for (stream, freqs) in series {
            for interval in self.stream_intervals(freqs) {
                // Find the best-overlapping existing candidate.
                let mut best: Option<(usize, f64)> = None;
                for (i, cand) in candidates.iter().enumerate() {
                    let j = cand.interval.jaccard(&interval);
                    if j >= self.config.delta && best.is_none_or(|(_, bj)| j > bj) {
                        best = Some((i, j));
                    }
                }
                match best {
                    Some((i, _)) => {
                        let cand = &mut candidates[i];
                        // Replace the kept interval by the intersection and
                        // record the new stream.
                        if let Some(inter) = cand.interval.intersection(&interval) {
                            cand.interval = inter;
                        }
                        if !cand.streams.contains(stream) {
                            cand.streams.push(*stream);
                        }
                    }
                    None => candidates.push(Candidate {
                        interval,
                        streams: vec![*stream],
                    }),
                }
            }
        }
        let mut patterns: Vec<CombinatorialPattern> = candidates
            .into_iter()
            .map(|c| {
                let score = c.streams.len() as f64;
                let intervals = c.streams.iter().map(|&s| (s, c.interval, 1.0)).collect();
                CombinatorialPattern::new(c.streams, c.interval, score, intervals)
            })
            .collect();
        patterns.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_burst(timeline: usize, burst: std::ops::Range<usize>, peak: f64) -> Vec<f64> {
        (0..timeline)
            .map(|t| if burst.contains(&t) { peak } else { 1.0 })
            .collect()
    }

    #[test]
    fn stream_intervals_detect_burst() {
        let base = Base::new();
        let freqs = series_with_burst(30, 10..15, 20.0);
        let intervals = base.stream_intervals(&freqs);
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0], TimeInterval::new(10, 14));
    }

    #[test]
    fn flat_series_has_no_intervals() {
        let base = Base::new();
        assert!(base.stream_intervals(&[3.0; 20]).is_empty());
        assert!(base.stream_intervals(&[]).is_empty());
    }

    #[test]
    fn gap_filling_joins_nearby_runs() {
        let base = Base::with_config(BaseConfig {
            gap_fill: 2,
            delta: 0.3,
        });
        // Bursts at 5..8 and 10..13 with a 2-step lull in between.
        let mut freqs = vec![1.0; 25];
        for t in 5..8 {
            freqs[t] = 20.0;
        }
        for t in 10..13 {
            freqs[t] = 20.0;
        }
        let intervals = base.stream_intervals(&freqs);
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0], TimeInterval::new(5, 12));

        let no_fill = Base::with_config(BaseConfig {
            gap_fill: 0,
            delta: 0.3,
        });
        assert_eq!(no_fill.stream_intervals(&freqs).len(), 2);
    }

    #[test]
    fn leading_and_trailing_gaps_are_not_filled() {
        let base = Base::with_config(BaseConfig {
            gap_fill: 100,
            delta: 0.3,
        });
        let freqs = series_with_burst(10, 4..6, 30.0);
        let intervals = base.stream_intervals(&freqs);
        assert_eq!(intervals.len(), 1);
        // The gap before 4 and after 5 must not be filled even though they
        // are shorter than the (huge) gap_fill parameter.
        assert_eq!(intervals[0], TimeInterval::new(4, 5));
    }

    #[test]
    fn merges_overlapping_intervals_across_streams() {
        let base = Base::new();
        let series = vec![
            (StreamId(0), series_with_burst(30, 10..16, 15.0)),
            (StreamId(1), series_with_burst(30, 11..17, 15.0)),
            (StreamId(2), series_with_burst(30, 25..28, 15.0)),
        ];
        let patterns = base.mine_series(&series);
        assert_eq!(patterns.len(), 2);
        // The merged pattern covers streams 0 and 1 over the intersection.
        let merged = &patterns[0];
        assert_eq!(merged.streams, vec![StreamId(0), StreamId(1)]);
        assert!(merged.timeframe.start >= 10);
        assert!(merged.timeframe.end <= 16);
        assert_eq!(patterns[1].streams, vec![StreamId(2)]);
    }

    #[test]
    fn disjoint_bursts_are_not_merged() {
        let base = Base::new();
        let series = vec![
            (StreamId(0), series_with_burst(40, 5..10, 15.0)),
            (StreamId(1), series_with_burst(40, 30..35, 15.0)),
        ];
        let patterns = base.mine_series(&series);
        assert_eq!(patterns.len(), 2);
        for p in &patterns {
            assert_eq!(p.n_streams(), 1);
        }
    }

    #[test]
    fn delta_controls_merging() {
        let strict = Base::with_config(BaseConfig {
            gap_fill: 0,
            delta: 0.9,
        });
        let lenient = Base::with_config(BaseConfig {
            gap_fill: 0,
            delta: 0.1,
        });
        let series = vec![
            (StreamId(0), series_with_burst(40, 10..20, 15.0)),
            (StreamId(1), series_with_burst(40, 17..25, 15.0)),
        ];
        assert_eq!(strict.mine_series(&series).len(), 2);
        assert_eq!(lenient.mine_series(&series).len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(Base::new().mine_series(&[]).is_empty());
    }
}
