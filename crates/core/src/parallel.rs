//! Shared scoped-thread work queue for index-parallel maps.
//!
//! The paper's term-level independence argument (terms can be mined — and
//! their posting lists scored — independently) shows up in three places:
//! `STLocal::mine_collection_parallel`, `STComb::mine_collection_parallel`,
//! and the search engine's prebuilt-index builder. All three share this
//! helper: a fixed pool of scoped threads pulls indices `0..n_items` off an
//! atomic counter and writes `f(i)` into slot `i`, so results come back in
//! input order and the output is deterministic regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every index in `0..n_items` using up to `n_threads`
/// scoped worker threads and returns the results in index order.
///
/// `n_threads` is clamped to at least 1; with one thread this degrades to a
/// plain serial map. A panic in `f` propagates out of the call (the scope
/// joins all workers first).
pub fn parallel_map<T, F>(n_items: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_threads = n_threads.max(1).min(n_items.max(1));
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n_items).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let value = f(i);
                results.lock().unwrap()[i] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        for n_threads in [1, 2, 8] {
            let out = parallel_map(100, n_threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_and_zero_threads() {
        let out: Vec<usize> = parallel_map(0, 0, |i| i);
        assert!(out.is_empty());
        let out = parallel_map(3, 0, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
