//! Spatiotemporal burstiness patterns — the paper's core contribution.
//!
//! Two complementary miners turn a geostamped document collection into
//! spatiotemporal burstiness patterns for each term:
//!
//! * [`STComb`] (Section 3) — **combinatorial patterns**: arbitrary sets of
//!   streams that are simultaneously bursty during a common temporal
//!   interval. Implemented by extracting per-stream temporal bursts and
//!   solving the Highest-Scoring-Subset problem as a maximum-weight clique
//!   on an interval graph ([`interval_clique`]), iterated for multiple
//!   non-overlapping patterns.
//! * [`STLocal`] (Section 4) — **regional patterns**: axis-aligned map
//!   rectangles that stay bursty over maximal time windows. Implemented as a
//!   streaming algorithm: per-snapshot `R-Bursty`, one score sequence per
//!   tracked region, online Ruzzo–Tompa (`GetMax`) maintenance of maximal
//!   windows, and pruning of regions whose running total goes negative.
//!
//! The crate also contains the two baselines the paper evaluates against —
//! [`Base`] (binarised per-stream bursts greedily merged across streams by
//! Jaccard overlap) and [`TB`] (temporal-only burstiness over the merged
//! stream, the KDD 2009 predecessor) — and the evaluation metrics of
//! Section 6.2.2 ([`evaluation`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod evaluation;
pub mod interval_clique;
pub mod parallel;
pub mod pattern;
pub mod stcomb;
pub mod stlocal;
pub mod tb;

pub use base::{Base, BaseConfig};
pub use evaluation::{end_error, jaccard_similarity, precision, start_error, topk_overlap};
pub use interval_clique::{max_weight_interval_clique, WeightedInterval};
pub use parallel::parallel_map;
pub use pattern::{
    CombinatorialPattern, Pattern, PatternGeometry, PatternRecord, PatternSource, RegionalPattern,
};
pub use stb_discrepancy::RectKernel;
pub use stcomb::{STComb, STCombConfig};
pub use stlocal::{BaselineKind, STLocal, STLocalConfig, STLocalStats};
pub use tb::{TBConfig, TB};
