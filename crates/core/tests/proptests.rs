//! Property-based tests for the pattern miners.

use proptest::prelude::*;
use stb_core::interval_clique::{max_weight_clique_naive, max_weight_interval_clique};
use stb_core::{Pattern, STComb, STLocal, STLocalConfig, WeightedInterval, TB};
use stb_corpus::StreamId;
use stb_geo::Point2D;
use stb_timeseries::TimeInterval;

fn arb_weighted_intervals() -> impl Strategy<Value = Vec<WeightedInterval>> {
    prop::collection::vec(
        (0usize..40, 0usize..10, 0.01f64..2.0, 0usize..8).prop_map(|(start, len, w, tag)| {
            WeightedInterval::new(TimeInterval::new(start, start + len), w, tag)
        }),
        0..15,
    )
}

proptest! {
    #[test]
    fn clique_sweep_matches_naive(intervals in arb_weighted_intervals()) {
        let fast = max_weight_interval_clique(&intervals);
        let slow = max_weight_clique_naive(&intervals);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert!((f.weight - s.weight).abs() < 1e-9, "{} vs {}", f.weight, s.weight);
            }
            (f, s) => prop_assert!(false, "presence mismatch {f:?} vs {s:?}"),
        }
    }

    #[test]
    fn clique_members_share_the_common_segment(intervals in arb_weighted_intervals()) {
        if let Some(c) = max_weight_interval_clique(&intervals) {
            prop_assert!(c.weight > 0.0);
            for &m in &c.members {
                prop_assert!(intervals[m].interval.contains(c.common.start));
                prop_assert!(intervals[m].interval.contains(c.common.end));
            }
        }
    }

    #[test]
    fn stcomb_patterns_are_internally_consistent(intervals in arb_weighted_intervals()) {
        let patterns = STComb::new().mine_intervals(&intervals);
        for p in &patterns {
            // Score equals the sum of its member interval weights.
            let sum: f64 = p.intervals.iter().map(|(_, _, w)| w).sum();
            prop_assert!((sum - p.score).abs() < 1e-9);
            // The timeframe is contained in every member interval.
            for (_, interval, _) in &p.intervals {
                prop_assert!(interval.contains(p.timeframe.start));
                prop_assert!(interval.contains(p.timeframe.end));
            }
            // Streams are sorted and unique.
            for w in p.streams.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
        // Patterns are sorted by score (iterative clique removal guarantees
        // non-increasing scores).
        for w in patterns.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-9);
        }
    }

    #[test]
    fn stcomb_uses_each_interval_at_most_once(intervals in arb_weighted_intervals()) {
        let patterns = STComb::new().mine_intervals(&intervals);
        let used: usize = patterns.iter().map(|p| p.intervals.len()).sum();
        prop_assert!(used <= intervals.len());
    }

    #[test]
    fn tb_patterns_cover_all_streams_and_positive_scores(
        freqs in prop::collection::vec(0.0f64..30.0, 5..60),
        n_streams in 1usize..6
    ) {
        let streams: Vec<StreamId> = (0..n_streams as u32).map(StreamId).collect();
        let patterns = TB::new().mine_merged_series(&freqs, &streams);
        for p in &patterns {
            prop_assert_eq!(p.n_streams(), n_streams);
            prop_assert!(p.score > 0.0);
            prop_assert!(p.timeframe.end < freqs.len());
        }
    }

    #[test]
    fn stlocal_patterns_have_positive_scores_and_valid_members(
        burst_stream in 0usize..4,
        burst_start in 2usize..10,
        burst_len in 1usize..5,
        peak in 5.0f64..30.0
    ) {
        let positions = vec![
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 1.0),
            Point2D::new(30.0, 30.0),
            Point2D::new(31.0, 31.0),
        ];
        let timeline = 20;
        let mut miner = STLocal::new(positions.clone(), STLocalConfig::default());
        for ts in 0..timeline {
            let mut obs = vec![1.0; positions.len()];
            if ts >= burst_start && ts < burst_start + burst_len {
                obs[burst_stream] = peak;
            }
            miner.step(&obs);
        }
        for p in miner.finish() {
            prop_assert!(p.score > 0.0);
            prop_assert!(p.timeframe.end < timeline);
            prop_assert!(!p.streams.is_empty());
            for s in &p.streams {
                prop_assert!(s.index() < positions.len());
            }
            prop_assert!(p.overlaps(p.streams[0], p.timeframe.start));
        }
    }
}
