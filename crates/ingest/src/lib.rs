//! Live document ingestion: incremental mining and per-term index deltas.
//!
//! The rest of the workspace reproduces the paper's *batch* pipeline:
//! freeze a collection, mine every term, build the posting index, serve.
//! This crate turns the same machinery into a **live** system in which
//! documents, ticks, streams, and previously-unseen terms keep arriving
//! while queries are being served:
//!
//! * [`LiveCollection`] — a mutable collection behind generational
//!   `Arc<Collection>` snapshots (copy-on-write per generation), sharing
//!   the frequency-tensor representation with `stb-corpus`.
//! * [`IngestPipeline`] — stage documents, commit ticks: each commit
//!   advances the per-(term, stream) online burst state, re-mines only the
//!   tick's *dirty terms* (the streaming `STLocal` step of Algorithm 2, or
//!   a dirty-subset `STComb` pass), and applies the resulting
//!   [`PatternDelta`]s to a sharded `ShardedEngine` — per-term posting
//!   re-scores and precise per-shard cache invalidation, never a full
//!   rebuild — before publishing one new immutable serving generation.
//! * [`SearchHandle`] — cloneable **lock-free** query access over the
//!   engine's `ServingFront`, speaking the typed [`Query`] DSL
//!   (time/region filters, explanations, structured errors): readers load
//!   the current generation from an epoch-managed pointer and never block
//!   ingestion (nor does ingestion block them), yet answer bit-identically
//!   to the single-threaded engine.
//! * [`replay_tsv`] — drive a TSV corpus from disk through the pipeline
//!   tick-by-tick via the streaming reader in `stb_corpus::tsv`.
//! * **Standing subscriptions** ([`SearchHandle::subscribe`]) — register a
//!   typed [`Query`] once and receive a [`ResultDiff`] after every commit
//!   whose dirty terms intersect its term set: each commit intersects the
//!   tick's dirty set with the `stb-subscribe` registry's term index, so
//!   only affected registrations re-evaluate (against the generation just
//!   published — never torn), with per-channel overflow policies
//!   ([`OverflowPolicy`]).
//! * **Durability** ([`IngestPipeline::durable`]) — commits are
//!   write-ahead logged (`stb-store`) before they are applied, and
//!   [`IngestPipeline::checkpoint`] persists atomic snapshots that compact
//!   the log, so a restarted process recovers as `load_snapshot +
//!   replay_wal` — byte-identical to an engine that never stopped —
//!   instead of a full TSV rebuild.
//!
//! Replay-equivalence is property-tested: ingesting a corpus one document
//! at a time and then querying is byte-identical to the batch
//! `CollectionBuilder` + batch-mine + `finalize()` path, for both miners,
//! with the result cache on and off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod live;
pub mod obs;
pub mod pipeline;
pub mod replay;

pub use live::LiveCollection;
pub use obs::{PipelineObs, PipelineObsConfig};
pub use pipeline::{
    Backpressure, DurabilityState, HealthReport, IngestConfig, IngestError, IngestPipeline,
    MinerKind, PatternDelta, PipelineMetrics, QuarantineReason, QuarantinedDoc, RecoveryReport,
    SearchHandle, StageOutcome, TickReceipt,
};
pub use replay::{replay_tsv, replay_tsv_durable, ReplayError};

// Re-exported so live-serving callers can build and inspect typed queries
// without depending on `stb-search` directly.
pub use stb_search::{Query, QueryError, QueryResponse, QueryStats, UnknownWords};

// Re-exported so subscribing callers can configure channels and consume
// diffs without depending on `stb-subscribe` directly.
pub use stb_subscribe::{
    NotifyReport, OverflowPolicy, ResultDiff, SubscribeMetrics, SubscriptionHandle, SubscriptionId,
    SubscriptionInfo, SubscriptionOptions, SubscriptionRegistry, Trigger,
};

// Re-exported so instrumented callers can configure serving-side
// observability and read the exposition surface without depending on
// `stb-search`/`stb-obs` directly.
pub use stb_obs::{ObsRegistry, ObsSnapshot};
pub use stb_search::{SearchObs, SearchObsConfig};

// Re-exported so durable-pipeline callers can configure and match on the
// persistence layer without depending on `stb-store` directly.
pub use stb_store::{Durability, RetryPolicy, SnapshotState, Store, StoreError};
