//! Observability for the ingestion pipeline.
//!
//! [`PipelineObs`] bundles one shared [`ObsRegistry`] with every metric
//! the pipeline records: the serving-side [`SearchObs`] (attached to the
//! engine's lock-free front), the WAL's [`WalObs`] (append/fsync latency,
//! rollback/reset counters), the commit-latency histogram with a sampled
//! per-commit trace ring, durability-state gauges, and the queue-depth
//! gauges refreshed with every health publish. It is attached once via
//! [`crate::IngestPipeline::attach_obs`]; an un-attached pipeline records
//! nothing (its counters still count, they are just not exported).
//!
//! The pipeline's own lifetime counters (documents ingested, WAL appends,
//! recoveries, …) are [`Counter`] cells owned by the pipeline from birth;
//! attaching adopts the *same* cells into the registry, so
//! [`crate::PipelineMetrics`] and [`crate::HealthReport`] remain exact
//! views of what the registry exports — no mirroring, no double counting.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use stb_obs::{
    Counter, Gauge, LatencyHistogram, ObsRegistry, ObsSnapshot, Sampler, SpanClock, TraceId,
    TraceKind, TraceRecord, TraceRing,
};
use stb_search::{SearchObs, SearchObsConfig};
use stb_store::WalObs;

/// Construction parameters for [`PipelineObs`].
#[derive(Debug, Clone)]
pub struct PipelineObsConfig {
    /// Parameters of the serving-side [`SearchObs`] attached to the
    /// engine's front.
    pub search: SearchObsConfig,
    /// Sample one commit trace in this many commits into the commit trace
    /// ring (0 disables commit tracing).
    pub commit_sample_every: u64,
    /// Capacity of the commit trace ring.
    pub commit_trace_capacity: usize,
}

impl Default for PipelineObsConfig {
    fn default() -> Self {
        Self {
            search: SearchObsConfig::default(),
            commit_sample_every: 1,
            commit_trace_capacity: 128,
        }
    }
}

/// Metric handles for the ingestion path, pre-resolved from a shared
/// [`ObsRegistry`] so recording never touches the registry lock.
///
/// Registered metrics (beyond the `search_*` set of [`SearchObs`] and the
/// `wal_*` set of [`WalObs`]):
///
/// | name | kind | meaning |
/// |---|---|---|
/// | `ingest_commits_total` | counter | ticks committed |
/// | `ingest_commit_ns` | histogram | end-to-end commit latency |
/// | `ingest_durability_transitions_total` | counter | durability-state changes |
/// | `ingest_durability_state` | gauge | current state (0 ephemeral, 1 durable, 2 degraded, 3 non-durable) |
/// | `ingest_durability_state_seconds` | gauge | time spent in the current state |
/// | `ingest_staged_docs` / `ingest_dirty_terms` | gauge | open-tick queue depths |
/// | `ingest_buffered_ticks` / `ingest_quarantined_docs` | gauge | degraded buffer / quarantine depth |
///
/// The pipeline's lifetime counters (`ingest_docs_total`,
/// `ingest_docs_shed_total`, `ingest_wal_appends_total`, …) are adopted
/// from the pipeline's own cells at attach time — see
/// [`crate::IngestPipeline::attach_obs`].
#[derive(Debug)]
pub struct PipelineObs {
    registry: Arc<ObsRegistry>,
    search: Arc<SearchObs>,
    wal: WalObs,
    commits: Arc<Counter>,
    commit_ns: Arc<LatencyHistogram>,
    durability_transitions: Arc<Counter>,
    durability_state: Arc<Gauge>,
    durability_state_seconds: Arc<Gauge>,
    staged_docs: Arc<Gauge>,
    dirty_terms: Arc<Gauge>,
    buffered_ticks: Arc<Gauge>,
    quarantined_docs: Arc<Gauge>,
    sampler: Sampler,
    trace_seq: AtomicU64,
    traces: TraceRing,
}

impl PipelineObs {
    /// Creates the full pipeline metric set on a fresh registry.
    pub fn new(config: &PipelineObsConfig) -> Arc<Self> {
        Self::with_registry(Arc::new(ObsRegistry::new()), config)
    }

    /// Creates the pipeline metric set on an existing registry — the way
    /// to serve several instrumented components from one exposition
    /// endpoint.
    pub fn with_registry(registry: Arc<ObsRegistry>, config: &PipelineObsConfig) -> Arc<Self> {
        Arc::new(Self {
            search: SearchObs::new(Arc::clone(&registry), &config.search),
            wal: WalObs::register(&registry),
            commits: registry.counter("ingest_commits_total"),
            commit_ns: registry.histogram("ingest_commit_ns"),
            durability_transitions: registry.counter("ingest_durability_transitions_total"),
            durability_state: registry.gauge("ingest_durability_state"),
            durability_state_seconds: registry.gauge("ingest_durability_state_seconds"),
            staged_docs: registry.gauge("ingest_staged_docs"),
            dirty_terms: registry.gauge("ingest_dirty_terms"),
            buffered_ticks: registry.gauge("ingest_buffered_ticks"),
            quarantined_docs: registry.gauge("ingest_quarantined_docs"),
            sampler: Sampler::every(config.commit_sample_every),
            trace_seq: AtomicU64::new(0),
            traces: TraceRing::new(config.commit_trace_capacity),
            registry,
        })
    }

    /// The registry every metric handle lives in — the exposition surface
    /// ([`ObsRegistry::render_prometheus`], [`ObsRegistry::render_json`]).
    pub fn registry(&self) -> &Arc<ObsRegistry> {
        &self.registry
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.registry.snapshot()
    }

    /// The serving-side metric set the pipeline attaches to its front.
    pub fn search(&self) -> &Arc<SearchObs> {
        &self.search
    }

    /// The WAL metric set the pipeline attaches to every log writer it
    /// opens.
    pub fn wal(&self) -> &WalObs {
        &self.wal
    }

    /// The end-to-end commit latency histogram (`ingest_commit_ns`).
    pub fn commit_latency(&self) -> &Arc<LatencyHistogram> {
        &self.commit_ns
    }

    /// The sampled commit traces currently retained (stage breakdown of
    /// recent [`crate::IngestPipeline::commit_tick`] calls).
    pub fn commit_traces(&self) -> Vec<TraceRecord> {
        self.traces.snapshot()
    }

    /// Records one completed commit: counter + latency histogram always,
    /// span trace when sampled.
    pub(crate) fn record_commit(&self, clock: SpanClock) {
        let (total_ns, spans) = clock.finish();
        self.commits.inc();
        self.commit_ns.record(total_ns);
        if self.sampler.hit() {
            self.traces.push(TraceRecord {
                id: TraceId(self.trace_seq.fetch_add(1, Relaxed)),
                kind: TraceKind::Commit,
                total_ns,
                spans,
            });
        }
    }

    /// Refreshes the durability gauges; `transition` marks a state change
    /// since the previous refresh.
    pub(crate) fn set_durability(&self, code: f64, seconds_in_state: f64, transition: bool) {
        if transition {
            self.durability_transitions.inc();
        }
        self.durability_state.set(code);
        self.durability_state_seconds.set(seconds_in_state);
    }

    /// Refreshes the queue-depth gauges (published with every health
    /// update).
    pub(crate) fn set_queue_depths(
        &self,
        staged: usize,
        dirty: usize,
        buffered: usize,
        quarantined: usize,
    ) {
        self.staged_docs.set(staged as f64);
        self.dirty_terms.set(dirty as f64);
        self.buffered_ticks.set(buffered as f64);
        self.quarantined_docs.set(quarantined as f64);
    }
}
