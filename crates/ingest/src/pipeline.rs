//! The live ingestion pipeline: staged documents → tick commit → dirty-term
//! incremental mining → per-term index deltas.
//!
//! [`IngestPipeline`] connects the online machinery the rest of the
//! workspace already provides into one serving loop:
//!
//! 1. Documents are *staged* against the current open tick
//!    ([`IngestPipeline::stage_document`]); staging is cheap and tracks the
//!    tick's **dirty terms** (terms occurring in the staged documents).
//! 2. [`IngestPipeline::commit_tick`] closes the tick: the staged documents
//!    are applied to the [`LiveCollection`] (one copy-on-write generation),
//!    every tracked term's per-(term, stream) online burst state advances by
//!    one snapshot, and only the dirty terms are re-mined — the streaming
//!    `STLocal` step (Algorithm 2) or a dirty-subset `STComb` pass for the
//!    combinatorial view.
//! 3. The resulting [`PatternDelta`]s are applied to the pipeline's
//!    [`ShardedEngine`]: the new collection snapshot is swapped in, the
//!    prebuilt posting index re-scores only the affected terms, and the
//!    commit *publishes* one new immutable serving generation — the dirty
//!    terms' shards are rebuilt and the per-shard LRU result caches
//!    invalidate precisely the queries involving them.
//!
//! Queries are served concurrently through [`SearchHandle`]s over the
//! engine's lock-free [`ServingFront`]: readers load the current generation
//! from an epoch-managed pointer and never take a lock, so ingestion and
//! search proceed side by side without reader/writer contention; a query
//! observes either the previous tick's generation or the new one, never a
//! half-applied commit.
//!
//! # Equivalence with the batch path
//!
//! Replaying a corpus tick-by-tick and then querying is *byte-identical* to
//! batch-building the collection, batch-mining every term, and finalizing
//! the engine (property-tested in this crate for both miners, cache on and
//! off). Two ingredients make the dirty-term restriction exact:
//!
//! * `STLocal` is streaming by construction: a term absent from a tick has
//!   non-positive burstiness in every stream, which can neither create
//!   rectangles nor change any tracked window — its patterns are unchanged.
//! * `STComb` mines per-term series over a *fixed-length* timeline, so a
//!   term's output only changes when its own documents arrive. Growing the
//!   timeline changes every term's `B_T` normalization, so a grow re-dirties
//!   all terms — pre-size the timeline via `IngestConfig::timeline_capacity`
//!   to keep per-tick work proportional to the dirty set.
//!
//! Terms unseen when a miner's sequence started are caught up by replaying
//! their (all-zero) history from the collection, so late-arriving terms and
//! late-registered streams converge to the same state as the batch run.

use crate::live::LiveCollection;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use stb_core::{
    CombinatorialPattern, RegionalPattern, STComb, STCombConfig, STLocal, STLocalConfig,
};
use stb_corpus::{Collection, DocId, StreamId, TermId, Timestamp, Tokenizer};
use stb_geo::{GeoPoint, Point2D};
use stb_search::{
    EngineConfig, EngineMetrics, NoPatternPolicy, Query, QueryError, QueryResponse, Relevance,
    SearchResult, ServingFront, ShardedEngine, UnknownWords, DEFAULT_CACHE_CAPACITY,
    DEFAULT_SHARDS,
};
use stb_store::{
    DocRecord, Durability, PendingState, SnapshotState, Store, StoreError, StreamRecord,
    TermRecord, TickRecord, WalWriter,
};

/// Which miner keeps the patterns fresh while ingesting.
#[derive(Debug, Clone)]
pub enum MinerKind {
    /// The streaming regional miner (Section 4, Algorithm 2): one online
    /// `STLocal` instance per term, advanced every tick.
    STLocal(STLocalConfig),
    /// The combinatorial miner (Section 3): dirty terms are re-mined from
    /// their full (fixed-timeline) series on each commit.
    STComb(STCombConfig),
}

/// Configuration of an [`IngestPipeline`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Pre-sized timeline length. Ticks beyond it grow the timeline on
    /// demand (which re-dirties every term for the `STComb` view — see the
    /// module docs). 0 means fully dynamic.
    pub timeline_capacity: usize,
    /// The miner that keeps patterns fresh.
    pub miner: MinerKind,
    /// Scoring configuration of the serving engine.
    pub engine: EngineConfig,
    /// Capacity of the engine's query-result cache (0 disables caching).
    /// The capacity is split across the serving shards.
    pub cache_capacity: usize,
    /// Number of serving shards in the lock-free read tier (must be > 0).
    /// Terms are routed by hash ([`stb_search::shard_of`]); more shards
    /// mean finer-grained cache invalidation per commit.
    pub n_shards: usize,
    /// When the write-ahead log forces appends to disk (only relevant for
    /// pipelines opened with [`IngestPipeline::durable`]).
    pub durability: Durability,
    /// Automatically [`IngestPipeline::checkpoint`] after this many commits
    /// (compacting the WAL back to empty); 0 disables auto-checkpointing.
    /// Only relevant for durable pipelines.
    pub checkpoint_every_ticks: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            timeline_capacity: 0,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            engine: EngineConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            n_shards: DEFAULT_SHARDS,
            durability: Durability::Buffered,
            checkpoint_every_ticks: 0,
        }
    }
}

/// A per-term pattern update emitted by a tick commit and applied to the
/// search engine (`BurstySearchEngine::set_patterns`).
#[derive(Debug, Clone)]
pub enum PatternDelta {
    /// New regional patterns of a term (the `STLocal` view).
    Regional {
        /// The re-mined term.
        term: TermId,
        /// Its complete current pattern set (replace semantics).
        patterns: Vec<RegionalPattern>,
    },
    /// New combinatorial patterns of a term (the `STComb` view).
    Combinatorial {
        /// The re-mined term.
        term: TermId,
        /// Its complete current pattern set (replace semantics).
        patterns: Vec<CombinatorialPattern>,
    },
}

impl PatternDelta {
    /// The term the delta applies to.
    pub fn term(&self) -> TermId {
        match self {
            PatternDelta::Regional { term, .. } | PatternDelta::Combinatorial { term, .. } => *term,
        }
    }

    /// Number of patterns the term now has.
    pub fn n_patterns(&self) -> usize {
        match self {
            PatternDelta::Regional { patterns, .. } => patterns.len(),
            PatternDelta::Combinatorial { patterns, .. } => patterns.len(),
        }
    }
}

/// What one [`IngestPipeline::commit_tick`] did.
#[derive(Debug, Clone)]
pub struct TickReceipt {
    /// The committed tick (timestamp index).
    pub tick: Timestamp,
    /// Ids of the documents applied by this commit, in arrival order.
    pub new_docs: Vec<DocId>,
    /// The per-term pattern updates applied to the engine.
    pub deltas: Vec<PatternDelta>,
    /// Wall-clock milliseconds from commit start to the engine serving the
    /// new state (the pattern-freshness lag of this tick).
    pub commit_ms: f64,
}

/// A point-in-time snapshot of the pipeline's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineMetrics {
    /// Ticks committed so far.
    pub ticks_committed: usize,
    /// Documents applied over the pipeline's lifetime.
    pub docs_ingested: u64,
    /// Documents currently staged for the open tick (queue depth).
    pub staged_docs: usize,
    /// Dirty terms currently pending for the open tick (queue depth).
    pub dirty_terms: usize,
    /// Per-term online miners currently tracked (`STLocal` mode).
    pub tracked_miners: usize,
    /// Miners (re)built by replaying collection history — late-arriving
    /// terms and post-`add_stream` rebuilds.
    pub catchup_replays: u64,
    /// Wall-clock milliseconds of the most recent commit.
    pub last_commit_ms: f64,
    /// Cumulative wall-clock milliseconds spent in commits.
    pub total_commit_ms: f64,
    /// Mutation generation of the live collection.
    pub generation: u64,
    /// Whether the pipeline has a durable store attached.
    pub durable: bool,
    /// Tick records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Snapshots written (manual and automatic checkpoints).
    pub checkpoints: u64,
    /// The serving engine's counters.
    pub engine: EngineMetrics,
}

/// What [`IngestPipeline::durable`] found on disk and how it recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false = cold start).
    pub snapshot_loaded: bool,
    /// Ticks already covered by the loaded snapshot.
    pub snapshot_ticks: u64,
    /// WAL tick records replayed on top of the snapshot.
    pub wal_ticks_replayed: usize,
    /// WAL records skipped because the snapshot already contained them (a
    /// crash landed between the snapshot rename and the WAL reset).
    pub wal_ticks_skipped: usize,
    /// Torn-tail bytes discarded from the end of the WAL.
    pub wal_bytes_discarded: u64,
    /// Whether a TSV corpus input was ingested into the store by
    /// [`crate::replay_tsv_durable`]. Always `false` from
    /// [`IngestPipeline::durable`] itself; `false` after a durable TSV
    /// replay means the store already held state and the file was skipped.
    pub corpus_ingested: bool,
}

/// A cloneable handle for serving queries concurrently with ingestion.
///
/// Handles wrap the pipeline engine's lock-free [`ServingFront`]: every
/// query loads the current serving generation from an epoch-managed pointer
/// and runs without taking any lock, so any number of query threads proceed
/// in parallel and a tick commit never blocks them — the commit publishes a
/// new immutable generation and readers pick it up on their next query.
///
/// The handle speaks the same typed query DSL as the engine itself
/// ([`SearchHandle::query`] / [`SearchHandle::query_many`]), so live
/// queries get spatiotemporal filters, explanations, and structured errors
/// for free — against whatever tick generation is current at call time.
#[derive(Clone)]
pub struct SearchHandle {
    front: Arc<ServingFront>,
}

impl SearchHandle {
    /// Executes a typed [`Query`] against the current tick's generation,
    /// without taking a lock. See [`ServingFront::query`].
    pub fn query(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        self.front.query(query)
    }

    /// Executes a batch of typed queries against **one** consistent
    /// generation. See [`ServingFront::query_many`].
    pub fn query_many(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        self.front.query_many(queries)
    }

    /// The generation of the serving state the next query will observe
    /// (monotone; bumped by every commit).
    pub fn generation(&self) -> u64 {
        self.front.generation()
    }

    /// Answers a query: the top-`k` documents, best first.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query` and call `SearchHandle::query`"
    )]
    pub fn search(&self, query: &[TermId], k: usize) -> Vec<SearchResult> {
        self.query(&Query::terms(query.iter().copied()).top_k(k))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    /// Answers a whitespace-separated text query against the engine's
    /// current dictionary snapshot. Unknown words follow the engine's
    /// no-pattern policy, as in `BurstySearchEngine::search_text`.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query::text(..)` and call `SearchHandle::query`"
    )]
    pub fn search_text(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let unknown = match self.front.config().no_pattern {
            NoPatternPolicy::Exclude => UnknownWords::EmptyResponse,
            NoPatternPolicy::Zero => UnknownWords::Drop,
        };
        self.query(&Query::text(query).top_k(k).unknown_words(unknown))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    /// Answers a batch of queries.
    #[deprecated(
        since = "0.2.0",
        note = "build typed `Query` values and call `SearchHandle::query_many`"
    )]
    pub fn search_many(&self, queries: &[Vec<TermId>], k: usize) -> Vec<Vec<SearchResult>> {
        let typed: Vec<Query> = queries
            .iter()
            .map(|q| Query::terms(q.iter().copied()).top_k(k))
            .collect();
        self.query_many(&typed)
            .into_iter()
            .map(|r| r.map(|response| response.results).unwrap_or_default())
            .collect()
    }

    /// The current generation's collection snapshot.
    pub fn collection(&self) -> Arc<Collection> {
        self.front.collection()
    }

    /// The serving counters: engine counters as of the last publish, cache
    /// counters read live from the shard caches.
    pub fn metrics(&self) -> EngineMetrics {
        self.front.metrics()
    }
}

/// A document staged for the open tick.
#[derive(Debug, Clone)]
struct StagedDoc {
    stream: StreamId,
    counts: HashMap<TermId, u32>,
}

/// The live ingestion pipeline. See the module docs for the design.
///
/// # Example
///
/// ```
/// use stb_ingest::{IngestConfig, IngestPipeline, Query};
/// use stb_geo::GeoPoint;
/// use std::collections::HashMap;
///
/// let mut pipeline = IngestPipeline::new(IngestConfig {
///     timeline_capacity: 8,
///     ..Default::default()
/// });
/// let athens = pipeline.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let lima = pipeline.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
/// let quake = pipeline.intern("earthquake");
///
/// let handle = pipeline.search_handle();
/// for tick in 0..8 {
///     let f = if (2..=4).contains(&tick) { 20 } else { 1 };
///     pipeline.stage_document(athens, HashMap::from([(quake, f)]));
///     pipeline.stage_document(lima, HashMap::from([(quake, 1)]));
///     let receipt = pipeline.commit_tick();
///     assert_eq!(receipt.tick, tick);
///     // Queries are answerable at every tick, concurrently with ingest.
///     let _ = handle.query(&Query::terms([quake]).top_k(3));
/// }
/// let top = handle.query(&Query::terms([quake]).top_k(3)).unwrap().results;
/// assert!(!top.is_empty());
/// // The burst documents come from Athens during the burst window.
/// let collection = handle.collection();
/// let best = collection.document(top[0].doc);
/// assert_eq!(collection.stream(best.stream).name, "Athens");
/// assert!((2..=4).contains(&best.timestamp));
/// ```
pub struct IngestPipeline {
    live: LiveCollection,
    /// The sharded write side; its [`ServingFront`] serves lock-free reads.
    engine: ShardedEngine,
    miner: MinerKind,
    /// One online miner per term ever seen (`STLocal` mode only).
    local_miners: HashMap<TermId, STLocal>,
    staged: Vec<StagedDoc>,
    /// Terms occurring in the staged documents of the open tick.
    dirty: BTreeSet<TermId>,
    /// A stream was added since the last commit: per-term miner state is
    /// positional and must be rebuilt from collection history.
    structural_dirty: bool,
    /// The timeline length changed (or a structural change happened), so
    /// every term's `STComb` view is stale.
    comb_all_dirty: bool,
    ticks_committed: usize,
    docs_ingested: u64,
    catchup_replays: u64,
    last_commit_ms: f64,
    total_commit_ms: f64,
    /// The durable store, if this pipeline was opened with
    /// [`IngestPipeline::durable`].
    store: Option<Store>,
    /// The open WAL writer (durable pipelines only; dropped after the
    /// first append failure — see [`IngestPipeline::wal_error`]).
    wal: Option<WalWriter>,
    /// Streams already recorded in the snapshot or the WAL; the next tick
    /// record logs only the registrations beyond this count.
    logged_streams: usize,
    /// Terms already recorded in the snapshot or the WAL.
    logged_terms: usize,
    /// The first WAL/checkpoint failure, if any. The pipeline keeps
    /// serving in memory but stops logging.
    wal_error: Option<StoreError>,
    wal_appends: u64,
    checkpoints: u64,
    ticks_since_checkpoint: usize,
    checkpoint_every_ticks: usize,
    durability: Durability,
}

impl IngestPipeline {
    /// Creates an empty pipeline (no streams, no documents). Streams can be
    /// registered and documents staged immediately.
    pub fn new(config: IngestConfig) -> Self {
        let live = LiveCollection::new(config.timeline_capacity);
        let mut engine = ShardedEngine::new(
            live.snapshot(),
            config.engine,
            config.n_shards,
            config.cache_capacity,
        );
        // Prebuild the (empty) posting index so every later pattern delta
        // takes the incremental per-term path, and publish generation 1 so
        // handles can serve before the first commit.
        engine.finalize_with_threads(1);
        engine.publish();
        Self {
            live,
            engine,
            miner: config.miner,
            local_miners: HashMap::new(),
            staged: Vec::new(),
            dirty: BTreeSet::new(),
            structural_dirty: false,
            comb_all_dirty: false,
            ticks_committed: 0,
            docs_ingested: 0,
            catchup_replays: 0,
            last_commit_ms: 0.0,
            total_commit_ms: 0.0,
            store: None,
            wal: None,
            logged_streams: 0,
            logged_terms: 0,
            wal_error: None,
            wal_appends: 0,
            checkpoints: 0,
            ticks_since_checkpoint: 0,
            checkpoint_every_ticks: config.checkpoint_every_ticks,
            durability: config.durability,
        }
    }

    /// Opens a pipeline backed by a durable store at `dir`, recovering any
    /// previously persisted state.
    ///
    /// A fresh directory starts an empty pipeline whose commits are
    /// write-ahead logged. A directory holding a snapshot and/or WAL
    /// recovers as `load_snapshot + replay_wal`: the snapshot restores the
    /// collection, mined patterns (with their captured spatial
    /// footprints), posting lists (scores bit-for-bit), and pending
    /// bookkeeping; WAL records beyond the snapshot's tick are then
    /// re-committed. A torn WAL tail (crash artifact) is discarded and
    /// repaired transparently; a corrupt snapshot or mid-log corruption is
    /// a hard [`StoreError`] — the pipeline never silently starts empty
    /// over bad data.
    pub fn durable(
        config: IngestConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let store = Store::open(dir.as_ref())?;
        let snapshot = store.load_snapshot()?;
        let replay = store.read_wal()?;
        let durability = config.durability;

        let mut report = RecoveryReport {
            wal_bytes_discarded: replay.discarded_bytes,
            ..RecoveryReport::default()
        };
        let mut pipeline = Self::new(config);

        if let Some(state) = snapshot {
            report.snapshot_loaded = true;
            report.snapshot_ticks = state.ticks_committed;
            pipeline.live = LiveCollection::from_collection(Arc::clone(&state.collection));
            // A fresh engine over the recovered collection re-derives the
            // term→documents map deterministically; the persisted state
            // restores patterns and posting lists without re-scoring. The
            // restore rebuilds every shard and publishes a new generation
            // through the existing front (handles stay valid).
            pipeline
                .engine
                .restore(Arc::clone(&state.collection), state.engine);
            pipeline.ticks_committed = usize::try_from(state.ticks_committed)
                .map_err(|_| StoreError::corrupt("snapshot", "tick count out of range"))?;
            pipeline.structural_dirty = state.pending.structural_dirty;
            pipeline.comb_all_dirty = state.pending.comb_all_dirty;
            pipeline.dirty = state.pending.dirty_terms.iter().copied().collect();
            for doc in &state.pending.staged {
                pipeline.staged.push(StagedDoc {
                    stream: doc.stream,
                    counts: doc.counts.iter().copied().collect(),
                });
            }
        }

        for record in replay.ticks {
            if record.tick < pipeline.ticks_committed as u64 {
                // Already inside the snapshot: a crash landed between the
                // snapshot rename and the WAL reset.
                report.wal_ticks_skipped += 1;
                continue;
            }
            if report.snapshot_loaded && record.tick == report.snapshot_ticks {
                // The snapshot may have been taken mid-tick, with documents
                // staged; the WAL record that later committed this tick
                // holds *every* staged document (the log was reset at
                // checkpoint time), so the record is authoritative —
                // replaying it on top of the restored pending docs would
                // apply the pre-checkpoint ones twice.
                pipeline.staged.clear();
                pipeline.dirty.clear();
            }
            pipeline.apply_wal_record(record)?;
            report.wal_ticks_replayed += 1;
        }

        // Everything now in the collection is covered by snapshot + WAL.
        pipeline.logged_streams = pipeline.live.n_streams();
        pipeline.logged_terms = pipeline.live.dict().len();
        pipeline.wal = Some(store.wal_writer(replay.valid_len, durability)?);
        pipeline.store = Some(store);
        Ok((pipeline, report))
    }

    /// Re-commits one WAL record during recovery (no re-logging).
    fn apply_wal_record(&mut self, record: TickRecord) -> Result<(), StoreError> {
        if record.tick != self.ticks_committed as u64 {
            return Err(StoreError::corrupt(
                "wal record",
                format!(
                    "tick {} does not follow the {} ticks committed so far",
                    record.tick, self.ticks_committed
                ),
            ));
        }
        for s in &record.new_streams {
            let n = self.live.n_streams();
            if s.index.index() < n {
                // Already restored by the snapshot; must NOT re-mark the
                // structural flag the snapshot's pending state settled.
                continue;
            }
            if s.index.index() != n {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("stream index {} with {n} streams present", s.index.0),
                ));
            }
            // Goes through the public path so the structural flag is set
            // exactly as in the original run.
            self.add_stream_with_position(&s.name, s.geostamp, s.position);
        }
        for t in &record.new_terms {
            let n = self.live.dict().len();
            if t.id.index() < n {
                continue;
            }
            if t.id.index() != n {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("term id {} with {n} terms interned", t.id.0),
                ));
            }
            let id = self.live.intern(&t.text);
            if id != t.id {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!(
                        "term {:?} interned as {} instead of {}",
                        t.text, id.0, t.id.0
                    ),
                ));
            }
        }
        for d in &record.docs {
            if d.stream.index() >= self.live.n_streams() {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("document references unknown stream {}", d.stream.0),
                ));
            }
            self.stage_document(d.stream, d.counts.iter().copied().collect());
        }
        self.apply_commit();
        Ok(())
    }

    /// A cloneable query handle over the engine's lock-free serving front.
    pub fn search_handle(&self) -> SearchHandle {
        SearchHandle {
            front: self.engine.front(),
        }
    }

    /// The live collection's current snapshot (includes staged-but-uncommitted
    /// ticks' *streams and terms*, but documents only after their commit).
    pub fn collection(&self) -> Arc<Collection> {
        self.live.snapshot()
    }

    /// Number of ticks committed so far — also the index of the open tick.
    pub fn ticks_committed(&self) -> usize {
        self.ticks_committed
    }

    /// Current timeline length of the live collection.
    pub fn timeline_len(&self) -> usize {
        self.live.timeline_len()
    }

    /// Interns a term (new or existing) into the live dictionary.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.live.intern(term)
    }

    /// Registers a new stream; takes effect for miners at the next commit.
    pub fn add_stream(&mut self, name: &str, geostamp: GeoPoint) -> StreamId {
        let id = self.live.add_stream(name, geostamp);
        self.mark_structural();
        id
    }

    /// Registers a new stream with an explicit planar position.
    pub fn add_stream_with_position(
        &mut self,
        name: &str,
        geostamp: GeoPoint,
        position: Point2D,
    ) -> StreamId {
        let id = self.live.add_stream_with_position(name, geostamp, position);
        self.mark_structural();
        id
    }

    fn mark_structural(&mut self) {
        self.structural_dirty = true;
        self.comb_all_dirty = true;
    }

    /// Stages a document for the open tick.
    ///
    /// # Panics
    ///
    /// Panics if the stream is unknown.
    pub fn stage_document(&mut self, stream: StreamId, counts: HashMap<TermId, u32>) {
        assert!(stream.index() < self.live.n_streams(), "unknown stream");
        self.dirty.extend(counts.keys().copied());
        self.staged.push(StagedDoc { stream, counts });
    }

    /// Stages a raw-text document for the open tick, tokenizing with
    /// `tokenizer` and interning new terms into the live dictionary.
    pub fn stage_text_document(&mut self, stream: StreamId, text: &str, tokenizer: &Tokenizer) {
        let counts = self.live.term_counts(text, tokenizer);
        self.stage_document(stream, counts);
    }

    /// Commits the open tick: applies the staged documents, advances every
    /// tracked term's online burst state, re-mines the dirty terms, and
    /// publishes the new snapshot plus its [`PatternDelta`]s to the engine.
    ///
    /// Committing with no staged documents is valid (an empty tick) and is
    /// required for batch equivalence: the streaming miners must observe
    /// every timestamp, occupied or not.
    ///
    /// On a durable pipeline the tick is appended to the write-ahead log
    /// *before* it is applied, so a crash at any point leaves either a log
    /// without the tick (it was never acknowledged) or a log from which the
    /// tick replays exactly. Log failures do not fail the commit: the
    /// pipeline keeps serving in memory and parks the error in
    /// [`IngestPipeline::wal_error`].
    pub fn commit_tick(&mut self) -> TickReceipt {
        if self.store.is_some() && self.wal_error.is_none() {
            let record = self.build_tick_record();
            match self.wal.as_mut() {
                Some(w) => match w.append(&record) {
                    Ok(()) => {
                        self.wal_appends += 1;
                        self.logged_streams = self.live.n_streams();
                        self.logged_terms = self.live.dict().len();
                    }
                    Err(e) => {
                        // Stop logging: a half-written log must not receive
                        // further records on top of a failed append.
                        self.wal_error = Some(e);
                        self.wal = None;
                    }
                },
                None => self.wal_error = Some(StoreError::NotDurable),
            }
        }
        let receipt = self.apply_commit();
        self.ticks_since_checkpoint += 1;
        if self.store.is_some()
            && self.checkpoint_every_ticks > 0
            && self.ticks_since_checkpoint >= self.checkpoint_every_ticks
            && self.wal_error.is_none()
        {
            if let Err(e) = self.checkpoint() {
                self.wal_error = Some(e);
            }
        }
        receipt
    }

    /// The WAL record describing the open tick: everything registered or
    /// staged since the last logged tick (or checkpoint).
    fn build_tick_record(&self) -> TickRecord {
        let collection = self.live.collection();
        let new_streams = collection.streams()[self.logged_streams..]
            .iter()
            .map(|s| StreamRecord {
                index: s.id,
                name: s.name.clone(),
                geostamp: s.geostamp,
                position: s.position,
            })
            .collect();
        let new_terms = collection
            .dict()
            .iter()
            .skip(self.logged_terms)
            .map(|(id, text)| TermRecord {
                id,
                text: text.to_string(),
            })
            .collect();
        let docs = self
            .staged
            .iter()
            .map(|doc| {
                let mut counts: Vec<(TermId, u32)> =
                    doc.counts.iter().map(|(&t, &c)| (t, c)).collect();
                counts.sort_by_key(|&(t, _)| t);
                DocRecord {
                    stream: doc.stream,
                    counts,
                }
            })
            .collect();
        TickRecord {
            tick: self.ticks_committed as u64,
            new_streams,
            new_terms,
            docs,
        }
    }

    /// Applies the open tick to the in-memory state (the whole of
    /// [`IngestPipeline::commit_tick`] minus durability).
    fn apply_commit(&mut self) -> TickReceipt {
        let start = Instant::now();
        let tick = self.ticks_committed;

        // Grow the timeline if the open tick runs past it. This changes the
        // `B_T` normalization of every term's series, so the combinatorial
        // view of every term is re-mined below.
        if tick >= self.live.timeline_len() {
            self.live.extend_timeline(tick + 1);
            self.comb_all_dirty = true;
        }

        // Apply the staged documents (one copy-on-write generation).
        let staged = std::mem::take(&mut self.staged);
        let mut new_docs = Vec::with_capacity(staged.len());
        for doc in staged {
            new_docs.push(self.live.push_document(doc.stream, tick, doc.counts));
        }
        self.docs_ingested += new_docs.len() as u64;
        self.ticks_committed += 1;
        let snapshot = self.live.snapshot();

        let mut dirty = std::mem::take(&mut self.dirty);
        if self.structural_dirty {
            // Stream positions changed: per-term miner state is positional,
            // so drop it and re-derive every term from collection history.
            self.local_miners.clear();
            dirty.extend(snapshot.terms());
            self.structural_dirty = false;
        }
        if self.comb_all_dirty && matches!(self.miner, MinerKind::STComb(_)) {
            dirty.extend(snapshot.terms());
        }
        self.comb_all_dirty = false;

        // Mine. Dirty terms get fresh patterns; in STLocal mode every
        // tracked term additionally advances its online state by one tick.
        let mut deltas = Vec::with_capacity(dirty.len());
        match &self.miner {
            MinerKind::STLocal(config) => {
                for &term in &dirty {
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        self.local_miners.entry(term)
                    {
                        // Late-arriving term: replay its (mostly zero)
                        // history so its miner state matches a batch run.
                        let mut miner = STLocal::new(snapshot.positions(), config.clone());
                        for ts in 0..tick {
                            miner.step(&snapshot.term_snapshot(term, ts).frequencies);
                        }
                        slot.insert(miner);
                        self.catchup_replays += 1;
                    }
                }
                let mut tracked: Vec<TermId> = self.local_miners.keys().copied().collect();
                tracked.sort();
                for term in tracked {
                    let snap = snapshot.term_snapshot(term, tick);
                    self.local_miners
                        .get_mut(&term)
                        .expect("tracked miner")
                        .step(&snap.frequencies);
                }
                for &term in &dirty {
                    deltas.push(PatternDelta::Regional {
                        term,
                        patterns: self.local_miners[&term].patterns(),
                    });
                }
            }
            MinerKind::STComb(config) => {
                let miner = STComb::with_config(config.clone());
                for &term in &dirty {
                    deltas.push(PatternDelta::Combinatorial {
                        term,
                        patterns: miner.mine_collection(&snapshot, term),
                    });
                }
            }
        }

        // Publish: swap the snapshot in, apply the per-term deltas, and
        // push one new serving generation to the lock-free front. Readers
        // never block on this — they keep serving the previous generation
        // until the publish lands.
        self.engine
            .update_collection(Arc::clone(&snapshot), &new_docs);
        for delta in &deltas {
            match delta {
                PatternDelta::Regional { term, patterns } => {
                    self.engine.set_patterns(*term, patterns);
                }
                PatternDelta::Combinatorial { term, patterns } => {
                    self.engine.set_patterns(*term, patterns);
                }
            }
        }
        // Under tf-idf every term's relevance depends on the corpus
        // document count, so new documents stale every posting list.
        if self.engine.engine().config().relevance == Relevance::TfIdf && !new_docs.is_empty() {
            for term in snapshot.terms() {
                self.engine.refresh_term(term);
            }
        }
        self.engine.publish();

        let commit_ms = start.elapsed().as_secs_f64() * 1000.0;
        self.last_commit_ms = commit_ms;
        self.total_commit_ms += commit_ms;
        TickReceipt {
            tick,
            new_docs,
            deltas,
            commit_ms,
        }
    }

    /// Writes a snapshot of the full current state (collection, patterns,
    /// posting lists, pending bookkeeping) and truncates the WAL back to
    /// empty — the periodic compaction that bounds recovery time. Returns
    /// the snapshot size in bytes.
    ///
    /// The ordering is crash-safe: the snapshot is renamed into place
    /// (atomically) *before* the log is truncated, and WAL replay skips
    /// records the snapshot already covers, so a crash between the two
    /// steps only costs some redundant skipping on recovery.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotDurable`] on a pipeline without a store; any I/O
    /// or serialization failure otherwise.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let store = self.store.clone().ok_or(StoreError::NotDurable)?;
        let state = self.export_snapshot_state();
        let bytes = store.write_snapshot(&state)?;
        match self.wal.as_mut() {
            Some(w) => w.reset()?,
            None => {
                // The writer was dropped after an append failure; reopen
                // fresh now that the snapshot covers everything.
                let replay = store.read_wal()?;
                let mut w = store.wal_writer(replay.valid_len, self.durability)?;
                w.reset()?;
                self.wal = Some(w);
            }
        }
        self.logged_streams = self.live.n_streams();
        self.logged_terms = self.live.dict().len();
        self.checkpoints += 1;
        self.ticks_since_checkpoint = 0;
        Ok(bytes)
    }

    /// Exports the pipeline's full state as a snapshot value (what
    /// [`IngestPipeline::checkpoint`] persists).
    pub fn export_snapshot_state(&self) -> SnapshotState {
        let mut staged = Vec::with_capacity(self.staged.len());
        for doc in &self.staged {
            let mut counts: Vec<(TermId, u32)> = doc.counts.iter().map(|(&t, &c)| (t, c)).collect();
            counts.sort_by_key(|&(t, _)| t);
            staged.push(DocRecord {
                stream: doc.stream,
                counts,
            });
        }
        SnapshotState {
            ticks_committed: self.ticks_committed as u64,
            collection: self.live.snapshot(),
            engine: self.engine.export_state(),
            pending: PendingState {
                structural_dirty: self.structural_dirty,
                comb_all_dirty: self.comb_all_dirty,
                dirty_terms: self.dirty.iter().copied().collect(),
                staged,
            },
        }
    }

    /// The first durability failure, if any. Once set, the pipeline keeps
    /// serving queries and commits in memory but appends nothing further
    /// to the log; a successful [`IngestPipeline::checkpoint`] does not
    /// clear it (the operator decides whether the state is trustworthy).
    pub fn wal_error(&self) -> Option<&StoreError> {
        self.wal_error.as_ref()
    }

    /// Whether this pipeline has a durable store attached.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The durable store directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(Store::dir)
    }

    /// The pipeline's current mining output for one term: the live
    /// `STLocal` miner's accumulated windows, or a fresh combinatorial pass
    /// over the current collection. Useful for inspecting pattern state
    /// without going through a [`TickReceipt`].
    pub fn current_patterns(&self, term: TermId) -> PatternDelta {
        match &self.miner {
            MinerKind::STLocal(_) => PatternDelta::Regional {
                term,
                patterns: self
                    .local_miners
                    .get(&term)
                    .map(STLocal::patterns)
                    .unwrap_or_default(),
            },
            MinerKind::STComb(config) => PatternDelta::Combinatorial {
                term,
                patterns: STComb::with_config(config.clone())
                    .mine_collection(self.live.collection(), term),
            },
        }
    }

    /// A snapshot of the pipeline's counters.
    pub fn metrics(&self) -> PipelineMetrics {
        PipelineMetrics {
            ticks_committed: self.ticks_committed,
            docs_ingested: self.docs_ingested,
            staged_docs: self.staged.len(),
            dirty_terms: self.dirty.len(),
            tracked_miners: self.local_miners.len(),
            catchup_replays: self.catchup_replays,
            last_commit_ms: self.last_commit_ms,
            total_commit_ms: self.total_commit_ms,
            generation: self.live.generation(),
            durable: self.store.is_some(),
            wal_appends: self.wal_appends,
            checkpoints: self.checkpoints,
            engine: self.engine.metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_search::BurstySearchEngine;

    /// Typed-API term query through a live handle.
    fn run(handle: &SearchHandle, terms: &[TermId], k: usize) -> Vec<SearchResult> {
        handle
            .query(&Query::terms(terms.iter().copied()).top_k(k))
            .map(|r| r.results)
            .unwrap_or_default()
    }

    /// Typed-API term query against a reference engine.
    fn engine_run(engine: &BurstySearchEngine, terms: &[TermId], k: usize) -> Vec<SearchResult> {
        engine
            .query(&Query::terms(terms.iter().copied()).top_k(k))
            .map(|r| r.results)
            .unwrap_or_default()
    }

    /// Typed-API text query through a live handle; unknown words make the
    /// query vacuously empty (the live-serving default while a term has not
    /// arrived yet).
    fn run_text(handle: &SearchHandle, text: &str, k: usize) -> Vec<SearchResult> {
        handle
            .query(
                &Query::text(text)
                    .top_k(k)
                    .unknown_words(stb_search::UnknownWords::EmptyResponse),
            )
            .map(|r| r.results)
            .unwrap_or_default()
    }

    fn two_cluster_pipeline(miner: MinerKind, capacity: usize) -> (IngestPipeline, Vec<StreamId>) {
        let mut pipeline = IngestPipeline::new(IngestConfig {
            timeline_capacity: capacity,
            miner,
            ..Default::default()
        });
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        (pipeline, streams)
    }

    fn burst_tick(
        pipeline: &mut IngestPipeline,
        streams: &[StreamId],
        term: TermId,
        bursting: bool,
    ) -> TickReceipt {
        for (i, &s) in streams.iter().enumerate() {
            let f = if bursting && i < 2 { 25 } else { 1 };
            pipeline.stage_document(s, HashMap::from([(term, f)]));
        }
        pipeline.commit_tick()
    }

    #[test]
    fn stlocal_pipeline_detects_burst_and_serves_queries() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 20);
        let quake = pipeline.intern("quake");
        let handle = pipeline.search_handle();
        for tick in 0..20 {
            let receipt = burst_tick(&mut pipeline, &streams, quake, (8..11).contains(&tick));
            assert_eq!(receipt.tick, tick);
            assert!(receipt.deltas.iter().all(|d| d.term() == quake));
            // Queries never fail mid-stream.
            let _ = run(&handle, &[quake], 5);
        }
        let top = run(&handle, &[quake], 6);
        assert!(!top.is_empty());
        let collection = handle.collection();
        for hit in &top {
            let doc = collection.document(hit.doc);
            assert!((8..11).contains(&doc.timestamp), "hit outside the burst");
            assert!(doc.stream == streams[0] || doc.stream == streams[1]);
        }
    }

    #[test]
    fn stcomb_pipeline_detects_burst() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STComb(STCombConfig::default()), 20);
        let storm = pipeline.intern("storm");
        for tick in 0..20 {
            burst_tick(&mut pipeline, &streams, storm, (5..8).contains(&tick));
        }
        let handle = pipeline.search_handle();
        let top = run(&handle, &[storm], 6);
        assert!(!top.is_empty());
        let collection = handle.collection();
        for hit in &top {
            let doc = collection.document(hit.doc);
            assert!((5..8).contains(&doc.timestamp));
        }
    }

    #[test]
    fn empty_ticks_are_committed() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 0);
        let t = pipeline.intern("t");
        burst_tick(&mut pipeline, &streams, t, false);
        let receipt = pipeline.commit_tick(); // nothing staged
        assert_eq!(receipt.tick, 1);
        assert!(receipt.new_docs.is_empty());
        assert!(receipt.deltas.is_empty());
        assert_eq!(pipeline.ticks_committed(), 2);
        assert_eq!(pipeline.timeline_len(), 2); // grew on demand
    }

    #[test]
    fn unseen_term_is_searchable_after_it_arrives() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 12);
        let early = pipeline.intern("early");
        let handle = pipeline.search_handle();
        for _ in 0..5 {
            burst_tick(&mut pipeline, &streams, early, false);
        }
        // "late" is unknown to the engine's snapshot: empty results, no
        // panic (Exclude policy).
        assert!(run_text(&handle, "late", 5).is_empty());

        let late = pipeline.intern("late");
        for tick in 5..12 {
            for &s in &streams[..2] {
                let f = if (6..9).contains(&tick) { 30 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(late, f)]));
            }
            pipeline.commit_tick();
        }
        let hits = run_text(&handle, "late", 5);
        assert!(!hits.is_empty(), "late term must score once it arrived");
        let collection = handle.collection();
        assert!((6..9).contains(&collection.document(hits[0].doc).timestamp));
    }

    #[test]
    fn adding_a_stream_mid_flight_rebuilds_miners() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 16);
        let t = pipeline.intern("t");
        for _ in 0..4 {
            burst_tick(&mut pipeline, &streams, t, false);
        }
        let before = pipeline.metrics().catchup_replays;
        let d = pipeline.add_stream("D", GeoPoint::new(1.5, 0.5));
        let mut all = streams.clone();
        all.push(d);
        for tick in 4..16 {
            for (i, &s) in all.iter().enumerate() {
                let bursty = (6..9).contains(&tick) && (i < 2 || s == d);
                let f = if bursty { 25 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(t, f)]));
            }
            pipeline.commit_tick();
        }
        assert!(
            pipeline.metrics().catchup_replays > before,
            "the structural change must have rebuilt miner state"
        );
        let handle = pipeline.search_handle();
        let top = run(&handle, &[t], 3);
        assert!(!top.is_empty());
        let collection = handle.collection();
        assert!((6..9).contains(&collection.document(top[0].doc).timestamp));
    }

    #[test]
    fn cache_invalidation_is_per_dirty_term() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 20);
        let hot = pipeline.intern("hot");
        let cold = pipeline.intern("cold");
        let handle = pipeline.search_handle();
        // Both terms burst early so both have patterns.
        for tick in 0..10 {
            for &s in &streams[..2] {
                let f = if (2..5).contains(&tick) { 20 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(hot, f), (cold, f)]));
            }
            pipeline.commit_tick();
        }
        let _ = run(&handle, &[hot], 5);
        let _ = run(&handle, &[cold], 5);
        let misses_before = handle.metrics().cache_misses;
        // A tick touching only `hot` must keep `cold`'s cached entry.
        for &s in &streams[..2] {
            pipeline.stage_document(s, HashMap::from([(hot, 2)]));
        }
        pipeline.commit_tick();
        let _ = run(&handle, &[cold], 5); // hit
        assert_eq!(handle.metrics().cache_misses, misses_before);
        let _ = run(&handle, &[hot], 5); // miss: invalidated by the commit
        assert_eq!(handle.metrics().cache_misses, misses_before + 1);
    }

    #[test]
    fn tfidf_relevance_refreshes_all_terms() {
        // Under tf-idf the corpus document count enters every score, so the
        // pipeline must keep non-dirty terms' postings fresh too.
        let config = IngestConfig {
            timeline_capacity: 10,
            engine: EngineConfig::builder()
                .relevance(Relevance::TfIdf)
                .no_pattern(NoPatternPolicy::Zero)
                .build(),
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config.clone());
        let streams = [
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
        ];
        let a = pipeline.intern("a");
        let b = pipeline.intern("b");
        for tick in 0..10 {
            for &s in &streams {
                let mut counts = HashMap::from([(a, if tick == 3 { 15 } else { 1 })]);
                if tick < 5 {
                    counts.insert(b, 1);
                }
                pipeline.stage_document(s, counts);
            }
            pipeline.commit_tick();
        }
        let handle = pipeline.search_handle();
        let got = run(&handle, &[b], 30);

        // Oracle: a cold engine over the final snapshot with the same
        // patterns must agree, including the tf-idf weights.
        let collection = handle.collection();
        let mut reference = BurstySearchEngine::new(Arc::clone(&collection), config.engine);
        reference.set_cache_capacity(0);
        let (patterns, _) = STLocal::mine_collection(&collection, b, STLocalConfig::default());
        reference.set_patterns(b, &patterns);
        let (patterns_a, _) = STLocal::mine_collection(&collection, a, STLocalConfig::default());
        reference.set_patterns(a, &patterns_a);
        let expect = engine_run(&reference, &[b], 30);
        assert_eq!(got.len(), expect.len());
        for (x, y) in got.iter().zip(&expect) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score, y.score, "tf-idf scores must match the oracle");
        }
    }

    #[test]
    fn metrics_report_queue_depths() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 8);
        let t = pipeline.intern("t");
        pipeline.stage_document(streams[0], HashMap::from([(t, 1)]));
        let m = pipeline.metrics();
        assert_eq!(m.staged_docs, 1);
        assert_eq!(m.dirty_terms, 1);
        assert_eq!(m.ticks_committed, 0);
        pipeline.commit_tick();
        let m = pipeline.metrics();
        assert_eq!(m.staged_docs, 0);
        assert_eq!(m.dirty_terms, 0);
        assert_eq!(m.ticks_committed, 1);
        assert_eq!(m.docs_ingested, 1);
        assert_eq!(m.tracked_miners, 1);
        assert!(m.last_commit_ms >= 0.0);
        assert!(m.engine.finalized);
        assert!(m.generation > 0);
    }

    #[test]
    fn concurrent_queries_during_ingest() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 40);
        let t = pipeline.intern("t");
        let handle = pipeline.search_handle();
        let done = AtomicBool::new(false);
        let answered = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let h = handle.clone();
            let done_ref = &done;
            let answered_ref = &answered;
            let reader = scope.spawn(move || {
                while !done_ref.load(Ordering::Relaxed) {
                    let _ = run(&h, &[t], 5);
                    answered_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
            for tick in 0..40 {
                burst_tick(&mut pipeline, &streams, t, (10..20).contains(&tick));
                // The lock-free read path never blocks the writer, so on a
                // single-CPU box the commit loop could finish before the
                // reader is ever scheduled; yield to let it interleave.
                std::thread::yield_now();
            }
            // Liveness: the reader must get at least one answer while the
            // pipeline exists (not merely "was spawned").
            while answered.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
            reader.join().expect("query thread");
            assert!(
                answered.load(Ordering::Relaxed) > 0,
                "queries must be served during ingest"
            );
        });
        assert!(!run(&handle, &[t], 5).is_empty());
    }

    /// Fresh per-test store directory under the system temp dir.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stb-ingest-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(ticks: usize) -> IngestConfig {
        IngestConfig {
            timeline_capacity: ticks,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            ..Default::default()
        }
    }

    /// Drives `ticks` bursty ticks through a durable pipeline in `dir` and
    /// returns the pipeline plus the interned term.
    fn durable_burst_run(dir: &std::path::Path, ticks: usize) -> (IngestPipeline, TermId) {
        let (mut pipeline, report) =
            IngestPipeline::durable(durable_config(ticks), dir).expect("open durable pipeline");
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_ticks_replayed, 0);
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        let quake = pipeline.intern("quake");
        for tick in 0..ticks {
            burst_tick(&mut pipeline, &streams, quake, (3..6).contains(&tick));
        }
        assert!(pipeline.wal_error().is_none(), "WAL append must not fail");
        (pipeline, quake)
    }

    #[test]
    fn durable_pipeline_recovers_from_wal_alone() {
        let dir = temp_dir("wal-only");
        let (pipeline, quake) = durable_burst_run(&dir, 10);
        let expect = pipeline.export_snapshot_state();
        let handle = pipeline.search_handle();
        let expect_top = run(&handle, &[quake], 5);
        assert!(!expect_top.is_empty());
        drop(pipeline);

        let (recovered, report) =
            IngestPipeline::durable(durable_config(10), &dir).expect("recover");
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_ticks_replayed, 10);
        assert_eq!(report.wal_ticks_skipped, 0);
        assert_eq!(report.wal_bytes_discarded, 0);
        assert_eq!(recovered.ticks_committed(), 10);
        let got = recovered.export_snapshot_state();
        assert_eq!(expect.engine, got.engine, "engine state must round-trip");
        assert_eq!(expect.pending, got.pending);
        let got_top = run(&recovered.search_handle(), &[quake], 5);
        assert_eq!(expect_top.len(), got_top.len());
        for (e, g) in expect_top.iter().zip(&got_top) {
            assert_eq!(e.doc, g.doc);
            assert_eq!(e.score.to_bits(), g.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_pipeline_recovers_from_snapshot_plus_wal() {
        let dir = temp_dir("snap-wal");
        let (mut pipeline, quake) = durable_burst_run(&dir, 6);
        pipeline.checkpoint().expect("checkpoint");
        // Four more ticks after the checkpoint land only in the WAL.
        let streams: Vec<StreamId> = (0..3).map(|i| StreamId(i as u32)).collect();
        for tick in 6..10 {
            burst_tick(&mut pipeline, &streams, quake, (3..6).contains(&tick));
        }
        let expect = pipeline.export_snapshot_state();
        let expect_top = run(&pipeline.search_handle(), &[quake], 5);
        drop(pipeline);

        let (recovered, report) =
            IngestPipeline::durable(durable_config(10), &dir).expect("recover");
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_ticks, 6);
        assert_eq!(report.wal_ticks_replayed, 4);
        assert_eq!(recovered.ticks_committed(), 10);
        assert_eq!(expect.engine, recovered.export_snapshot_state().engine);
        let got_top = run(&recovered.search_handle(), &[quake], 5);
        for (e, g) in expect_top.iter().zip(&got_top) {
            assert_eq!(e.doc, g.doc);
            assert_eq!(e.score.to_bits(), g.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_counts() {
        let dir = temp_dir("compact");
        let (mut pipeline, _) = durable_burst_run(&dir, 8);
        let wal_before = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert!(wal_before > stb_store::WAL_HEADER_LEN);
        let bytes = pipeline.checkpoint().expect("checkpoint");
        assert!(bytes > 0);
        let wal_after = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert_eq!(wal_after, stb_store::WAL_HEADER_LEN);
        let m = pipeline.metrics();
        assert!(m.durable);
        assert_eq!(m.checkpoints, 1);
        assert_eq!(m.wal_appends, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_on_configured_cadence() {
        let dir = temp_dir("auto-ckpt");
        let config = IngestConfig {
            timeline_capacity: 9,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            checkpoint_every_ticks: 3,
            ..Default::default()
        };
        let (mut pipeline, _) = IngestPipeline::durable(config, &dir).expect("open");
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        let t = pipeline.intern("t");
        for tick in 0..9 {
            burst_tick(&mut pipeline, &streams, t, tick == 4);
        }
        assert!(pipeline.wal_error().is_none());
        assert_eq!(pipeline.metrics().checkpoints, 3);
        // The final commit triggered a checkpoint, so the WAL is compact.
        let wal_len = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert_eq!(wal_len, stb_store::WAL_HEADER_LEN);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_non_durable_pipeline_is_typed_error() {
        let (mut pipeline, _) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 4);
        assert!(!pipeline.is_durable());
        match pipeline.checkpoint() {
            Err(StoreError::NotDurable) => {}
            other => panic!("expected NotDurable, got {other:?}"),
        }
    }

    #[test]
    fn durable_pipeline_with_fsync_policy_commits() {
        let dir = temp_dir("fsync");
        let config = IngestConfig {
            timeline_capacity: 3,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            durability: Durability::Fsync,
            ..Default::default()
        };
        let (mut pipeline, _) = IngestPipeline::durable(config, &dir).expect("open");
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        for _ in 0..3 {
            pipeline.stage_document(s, HashMap::from([(t, 2)]));
            pipeline.commit_tick();
        }
        assert!(pipeline.wal_error().is_none());
        assert_eq!(pipeline.metrics().wal_appends, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
