//! The live ingestion pipeline: staged documents → tick commit → dirty-term
//! incremental mining → per-term index deltas.
//!
//! [`IngestPipeline`] connects the online machinery the rest of the
//! workspace already provides into one serving loop:
//!
//! 1. Documents are *staged* against the current open tick
//!    ([`IngestPipeline::stage_document`]); staging is cheap and tracks the
//!    tick's **dirty terms** (terms occurring in the staged documents).
//! 2. [`IngestPipeline::commit_tick`] closes the tick: the staged documents
//!    are applied to the [`LiveCollection`] (one copy-on-write generation),
//!    every tracked term's per-(term, stream) online burst state advances by
//!    one snapshot, and only the dirty terms are re-mined — the streaming
//!    `STLocal` step (Algorithm 2) or a dirty-subset `STComb` pass for the
//!    combinatorial view.
//! 3. The resulting [`PatternDelta`]s are applied to the pipeline's
//!    [`ShardedEngine`]: the new collection snapshot is swapped in, the
//!    prebuilt posting index re-scores only the affected terms, and the
//!    commit *publishes* one new immutable serving generation — the dirty
//!    terms' shards are rebuilt and the per-shard LRU result caches
//!    invalidate precisely the queries involving them.
//!
//! Queries are served concurrently through [`SearchHandle`]s over the
//! engine's lock-free [`ServingFront`]: readers load the current generation
//! from an epoch-managed pointer and never take a lock, so ingestion and
//! search proceed side by side without reader/writer contention; a query
//! observes either the previous tick's generation or the new one, never a
//! half-applied commit.
//!
//! # Equivalence with the batch path
//!
//! Replaying a corpus tick-by-tick and then querying is *byte-identical* to
//! batch-building the collection, batch-mining every term, and finalizing
//! the engine (property-tested in this crate for both miners, cache on and
//! off). Two ingredients make the dirty-term restriction exact:
//!
//! * `STLocal` is streaming by construction: a term absent from a tick has
//!   non-positive burstiness in every stream, which can neither create
//!   rectangles nor change any tracked window — its patterns are unchanged.
//! * `STComb` mines per-term series over a *fixed-length* timeline, so a
//!   term's output only changes when its own documents arrive. Growing the
//!   timeline changes every term's `B_T` normalization, so a grow re-dirties
//!   all terms — pre-size the timeline via `IngestConfig::timeline_capacity`
//!   to keep per-tick work proportional to the dirty set.
//!
//! Terms unseen when a miner's sequence started are caught up by replaying
//! their (all-zero) history from the collection, so late-arriving terms and
//! late-registered streams converge to the same state as the batch run.

use crate::live::LiveCollection;
use crate::obs::PipelineObs;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use stb_obs::{Counter, SpanClock, SpanKind};

use stb_core::{
    CombinatorialPattern, PatternRecord, RegionalPattern, STComb, STCombConfig, STLocal,
    STLocalConfig,
};
use stb_corpus::{Collection, DocId, StreamId, TermId, Timestamp, Tokenizer};
use stb_geo::{GeoPoint, Point2D};
use stb_search::{
    EngineConfig, EngineMetrics, NoPatternPolicy, Query, QueryError, QueryResponse, Relevance,
    SearchResult, ServingFront, ShardedEngine, UnknownWords, DEFAULT_CACHE_CAPACITY,
    DEFAULT_SHARDS,
};
use stb_store::{
    DocRecord, Durability, PendingState, RetryPolicy, SnapshotState, Store, StoreError,
    StreamRecord, TermRecord, TickRecord, WalWriter,
};
use stb_subscribe::{SubscriptionHandle, SubscriptionOptions, SubscriptionRegistry};

/// Which miner keeps the patterns fresh while ingesting.
#[derive(Debug, Clone)]
pub enum MinerKind {
    /// The streaming regional miner (Section 4, Algorithm 2): one online
    /// `STLocal` instance per term, advanced every tick.
    STLocal(STLocalConfig),
    /// The combinatorial miner (Section 3): dirty terms are re-mined from
    /// their full (fixed-timeline) series on each commit.
    STComb(STCombConfig),
}

/// Configuration of an [`IngestPipeline`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Pre-sized timeline length. Ticks beyond it grow the timeline on
    /// demand (which re-dirties every term for the `STComb` view — see the
    /// module docs). 0 means fully dynamic.
    pub timeline_capacity: usize,
    /// The miner that keeps patterns fresh.
    pub miner: MinerKind,
    /// Scoring configuration of the serving engine.
    pub engine: EngineConfig,
    /// Capacity of the engine's query-result cache (0 disables caching).
    /// The capacity is split across the serving shards.
    pub cache_capacity: usize,
    /// Number of serving shards in the lock-free read tier (must be > 0).
    /// Terms are routed by hash ([`stb_search::shard_of`]); more shards
    /// mean finer-grained cache invalidation per commit.
    pub n_shards: usize,
    /// When the write-ahead log forces appends to disk (only relevant for
    /// pipelines opened with [`IngestPipeline::durable`]).
    pub durability: Durability,
    /// Automatically [`IngestPipeline::checkpoint`] after this many commits
    /// (compacting the WAL back to empty); 0 disables auto-checkpointing.
    /// Only relevant for durable pipelines.
    pub checkpoint_every_ticks: usize,
    /// Retry policy for WAL appends, snapshot writes, and WAL rotation:
    /// transient store failures ([`StoreError::is_transient`]) are retried
    /// with bounded exponential backoff before durability degrades.
    pub retry: RetryPolicy,
    /// In degraded durability, at most this many committed-but-unlogged
    /// tick records are buffered in memory while re-opening the log is
    /// retried; one more commit fail-stops the pipeline to
    /// [`DurabilityState::NonDurable`]. 0 disables buffering (the first
    /// unrecovered failure fail-stops).
    pub max_buffered_ticks: usize,
    /// Upper bound on documents staged for the open tick; staging beyond
    /// it triggers the [`Backpressure`] policy. 0 means unbounded.
    pub max_staged_docs: usize,
    /// What [`IngestPipeline::try_stage_document`] does when the staging
    /// buffer is full.
    pub backpressure: Backpressure,
    /// Poison bound: a document whose total term count (sum of
    /// multiplicities) exceeds this is quarantined instead of staged. 0
    /// means unbounded.
    pub max_terms_per_doc: usize,
    /// At most this many quarantined documents are retained for
    /// inspection (oldest evicted first); the `quarantined_total` health
    /// counter keeps counting past the bound.
    pub max_quarantined_docs: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            timeline_capacity: 0,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            engine: EngineConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            n_shards: DEFAULT_SHARDS,
            durability: Durability::Buffered,
            checkpoint_every_ticks: 0,
            retry: RetryPolicy::default(),
            max_buffered_ticks: 64,
            max_staged_docs: 0,
            backpressure: Backpressure::Block,
            max_terms_per_doc: 0,
            max_quarantined_docs: 1024,
        }
    }
}

/// The durability contract a pipeline is currently honoring.
///
/// Durable pipelines move along `Durable → Degraded → NonDurable` as store
/// faults accumulate and recede:
///
/// * [`DurabilityState::Durable`] — every committed tick is in the WAL.
/// * [`DurabilityState::Degraded`] — a store failure interrupted logging;
///   committed ticks are buffered in memory (up to
///   [`IngestConfig::max_buffered_ticks`]) while each commit — or an
///   explicit [`IngestPipeline::try_recover_durability`] — retries
///   re-opening the log and replaying the buffer. Recovery returns to
///   `Durable` with zero committed-tick loss.
/// * [`DurabilityState::NonDurable`] — fail-stop: the buffer overflowed or
///   a permanent error (corruption-class, `EACCES`-class) made retrying
///   pointless. The pipeline keeps serving and committing in memory but
///   logs nothing further; only an explicit, successful
///   [`IngestPipeline::checkpoint`] (which persists everything and rotates
///   the log) revives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityState {
    /// No store is attached (the pipeline was built with
    /// [`IngestPipeline::new`]); durability was never promised.
    #[default]
    Ephemeral,
    /// Every committed tick has been written to the WAL.
    Durable,
    /// Store faults interrupted logging; commits are buffered in memory
    /// while recovery is retried.
    Degraded {
        /// Store operations that have failed since durability was last
        /// intact (appends, recovery attempts, rotations).
        consecutive_failures: u32,
        /// Committed tick records currently awaiting replay into a
        /// re-opened log.
        buffered_ticks: usize,
    },
    /// Fail-stop: logging has ceased. See the enum docs for what revives
    /// a pipeline from this state.
    NonDurable,
}

impl DurabilityState {
    /// Whether every committed tick is currently persisted (`Durable`).
    pub fn is_durable(&self) -> bool {
        matches!(self, DurabilityState::Durable)
    }

    /// Whether the pipeline is in the degraded, actively-recovering state.
    pub fn is_degraded(&self) -> bool {
        matches!(self, DurabilityState::Degraded { .. })
    }
}

/// What [`IngestPipeline::try_stage_document`] does when the staging
/// buffer ([`IngestConfig::max_staged_docs`]) is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Commit the open tick in-line to drain the buffer, then stage the
    /// document into the next tick. The caller pays the commit latency —
    /// the single-threaded analogue of blocking the producer.
    #[default]
    Block,
    /// Drop the document (counted in [`HealthReport::docs_shed`]) and keep
    /// the pipeline responsive.
    Shed,
    /// Refuse with [`IngestError::StagingFull`]; the caller decides.
    Error,
}

/// Why a document was quarantined instead of staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The document references a stream the collection does not have —
    /// applying it would panic the commit.
    UnknownStream,
    /// The document references a term id beyond the live dictionary —
    /// logging it would poison WAL replay and scoring.
    UnknownTerm,
    /// The document's total term count exceeds
    /// [`IngestConfig::max_terms_per_doc`].
    OversizedDoc,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::UnknownStream => write!(f, "unknown stream"),
            QuarantineReason::UnknownTerm => write!(f, "unknown term id"),
            QuarantineReason::OversizedDoc => write!(f, "term count over bound"),
        }
    }
}

/// A poison document parked in the quarantine log instead of killing its
/// tick. The original counts are retained so an operator can inspect (or
/// re-submit after fixing) the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedDoc {
    /// The tick that was open when the document arrived.
    pub tick: Timestamp,
    /// The stream the document claimed to belong to.
    pub stream: StreamId,
    /// The document's term counts, sorted by term id.
    pub counts: Vec<(TermId, u32)>,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// How [`IngestPipeline::try_stage_document`] disposed of a document.
#[derive(Debug)]
pub enum StageOutcome {
    /// Staged into the open tick.
    Staged,
    /// The staging buffer was full under [`Backpressure::Block`]: the open
    /// tick was committed in-line (receipt attached) and the document was
    /// staged into the next tick.
    StagedAfterCommit(Box<TickReceipt>),
    /// The staging buffer was full under [`Backpressure::Shed`]: the
    /// document was dropped.
    Shed,
    /// The document was poison and went to the quarantine log.
    Quarantined(QuarantineReason),
}

/// Typed staging failures surfaced by
/// [`IngestPipeline::try_stage_document`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IngestError {
    /// The staging buffer is full and the pipeline is configured with
    /// [`Backpressure::Error`].
    StagingFull {
        /// Documents currently staged.
        staged: usize,
        /// The configured bound.
        max: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::StagingFull { staged, max } => write!(
                f,
                "staging buffer full ({staged}/{max} documents); commit the open tick or \
                 configure a different backpressure policy"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// A point-in-time health summary of the pipeline: durability state,
/// failure/retry counters, queue depths, and quarantine size.
///
/// Obtained from [`IngestPipeline::health`] (always current) or
/// [`SearchHandle::health`] (as of the last pipeline operation) — the
/// admission-control and monitoring surface that replaces polling the
/// deprecated `wal_error()`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// The durability contract currently honored.
    pub durability: DurabilityState,
    /// Documents staged for the open tick.
    pub staged_docs: usize,
    /// Configured staging bound (0 = unbounded).
    pub max_staged_docs: usize,
    /// Committed-but-unlogged tick records buffered in degraded mode.
    pub buffered_ticks: usize,
    /// Configured degraded-buffer bound.
    pub max_buffered_ticks: usize,
    /// Dirty terms pending for the open tick.
    pub dirty_terms: usize,
    /// Tick records successfully appended to the WAL.
    pub wal_appends: u64,
    /// Store operations that failed after exhausting their retries.
    pub wal_failures: u64,
    /// Transient-failure retries performed across all store operations.
    pub store_retries: u64,
    /// Times the pipeline returned from `Degraded` to `Durable`.
    pub recoveries: u64,
    /// Snapshots written (manual and automatic checkpoints).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed.
    pub checkpoint_failures: u64,
    /// Documents dropped by [`Backpressure::Shed`].
    pub docs_shed: u64,
    /// Documents currently in the quarantine log.
    pub quarantined: usize,
    /// Documents ever quarantined (keeps counting past the log bound).
    pub quarantined_total: u64,
    /// Ticks committed over the pipeline's lifetime (the "age" of the
    /// serving state in ticks).
    pub uptime_ticks: usize,
    /// Wall-clock milliseconds of the most recent commit.
    pub last_commit_ms: f64,
    /// Wall-clock seconds the pipeline has spent in its *current*
    /// durability state (resets on every state transition).
    pub durability_state_secs: f64,
    /// The 99th-percentile commit latency in milliseconds, from the
    /// `ingest_commit_ns` histogram. `None` until
    /// [`IngestPipeline::attach_obs`] wires an observability registry (or
    /// while no commit has been recorded yet).
    pub commit_p99_ms: Option<f64>,
    /// Standing subscriptions currently registered.
    pub subscriptions: usize,
    /// Result diffs delivered to subscription channels over the
    /// pipeline's lifetime (coalesced merges count once).
    pub notifications: u64,
    /// Result diffs dropped by full `DropCounted` subscription channels.
    pub notifications_dropped: u64,
    /// The most recent store failure, while durability is not intact.
    pub last_error: Option<String>,
}

/// The pipeline-internal durability discriminant; payload for the public
/// [`DurabilityState`] lives in the pipeline's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DurState {
    Durable,
    Degraded,
    NonDurable,
}

/// A per-term pattern update emitted by a tick commit and applied to the
/// search engine (`BurstySearchEngine::set_patterns`).
#[derive(Debug, Clone)]
pub enum PatternDelta {
    /// New regional patterns of a term (the `STLocal` view).
    Regional {
        /// The re-mined term.
        term: TermId,
        /// Its complete current pattern set (replace semantics).
        patterns: Vec<RegionalPattern>,
    },
    /// New combinatorial patterns of a term (the `STComb` view).
    Combinatorial {
        /// The re-mined term.
        term: TermId,
        /// Its complete current pattern set (replace semantics).
        patterns: Vec<CombinatorialPattern>,
    },
}

impl PatternDelta {
    /// The term the delta applies to.
    pub fn term(&self) -> TermId {
        match self {
            PatternDelta::Regional { term, .. } | PatternDelta::Combinatorial { term, .. } => *term,
        }
    }

    /// Number of patterns the term now has.
    pub fn n_patterns(&self) -> usize {
        match self {
            PatternDelta::Regional { patterns, .. } => patterns.len(),
            PatternDelta::Combinatorial { patterns, .. } => patterns.len(),
        }
    }
}

/// What one [`IngestPipeline::commit_tick`] did.
#[derive(Debug, Clone)]
pub struct TickReceipt {
    /// The committed tick (timestamp index).
    pub tick: Timestamp,
    /// Ids of the documents applied by this commit, in arrival order.
    pub new_docs: Vec<DocId>,
    /// The per-term pattern updates applied to the engine.
    pub deltas: Vec<PatternDelta>,
    /// Wall-clock milliseconds from commit start to the engine serving the
    /// new state (the pattern-freshness lag of this tick).
    pub commit_ms: f64,
    /// The durability contract this tick's commit left the pipeline in —
    /// per-commit truth about whether the tick was logged, instead of
    /// polling the deprecated `wal_error()` afterwards.
    pub durability: DurabilityState,
}

/// A point-in-time snapshot of the pipeline's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineMetrics {
    /// Ticks committed so far.
    pub ticks_committed: usize,
    /// Documents applied over the pipeline's lifetime.
    pub docs_ingested: u64,
    /// Documents currently staged for the open tick (queue depth).
    pub staged_docs: usize,
    /// Dirty terms currently pending for the open tick (queue depth).
    pub dirty_terms: usize,
    /// Per-term online miners currently tracked (`STLocal` mode).
    pub tracked_miners: usize,
    /// Miners (re)built by replaying collection history — late-arriving
    /// terms and post-`add_stream` rebuilds.
    pub catchup_replays: u64,
    /// Wall-clock milliseconds of the most recent commit.
    pub last_commit_ms: f64,
    /// Cumulative wall-clock milliseconds spent in commits.
    pub total_commit_ms: f64,
    /// Mutation generation of the live collection.
    pub generation: u64,
    /// Whether the pipeline has a durable store attached.
    pub durable: bool,
    /// Tick records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Snapshots written (manual and automatic checkpoints).
    pub checkpoints: u64,
    /// The serving engine's counters.
    pub engine: EngineMetrics,
}

/// What [`IngestPipeline::durable`] found on disk and how it recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false = cold start).
    pub snapshot_loaded: bool,
    /// Ticks already covered by the loaded snapshot.
    pub snapshot_ticks: u64,
    /// WAL tick records replayed on top of the snapshot.
    pub wal_ticks_replayed: usize,
    /// WAL records skipped because the snapshot already contained them (a
    /// crash landed between the snapshot rename and the WAL reset).
    pub wal_ticks_skipped: usize,
    /// Torn-tail bytes discarded from the end of the WAL.
    pub wal_bytes_discarded: u64,
    /// Whether a TSV corpus input was ingested into the store by
    /// [`crate::replay_tsv_durable`]. Always `false` from
    /// [`IngestPipeline::durable`] itself; `false` after a durable TSV
    /// replay means the store already held state and the file was skipped.
    pub corpus_ingested: bool,
}

/// A cloneable handle for serving queries concurrently with ingestion.
///
/// Handles wrap the pipeline engine's lock-free [`ServingFront`]: every
/// query loads the current serving generation from an epoch-managed pointer
/// and runs without taking any lock, so any number of query threads proceed
/// in parallel and a tick commit never blocks them — the commit publishes a
/// new immutable generation and readers pick it up on their next query.
///
/// The handle speaks the same typed query DSL as the engine itself
/// ([`SearchHandle::query`] / [`SearchHandle::query_many`]), so live
/// queries get spatiotemporal filters, explanations, and structured errors
/// for free — against whatever tick generation is current at call time.
#[derive(Clone)]
pub struct SearchHandle {
    front: Arc<ServingFront>,
    /// Shared health cell, refreshed by the pipeline after every public
    /// mutating operation.
    health: Arc<Mutex<HealthReport>>,
    /// The pipeline's standing-subscription registry, notified by every
    /// commit right after publish.
    subscriptions: Arc<SubscriptionRegistry>,
}

impl SearchHandle {
    /// The pipeline's health as of its most recent operation (commit,
    /// stage, checkpoint, or recovery attempt) — durability state, retry
    /// counters, queue depths, quarantine size. Serving-side callers use
    /// this for admission control without a reference to the pipeline.
    pub fn health(&self) -> HealthReport {
        self.health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Executes a typed [`Query`] against the current tick's generation,
    /// without taking a lock. See [`ServingFront::query`].
    pub fn query(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        self.front.query(query)
    }

    /// Executes a batch of typed queries against **one** consistent
    /// generation. See [`ServingFront::query_many`].
    pub fn query_many(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        self.front.query_many(queries)
    }

    /// The generation of the serving state the next query will observe
    /// (monotone; bumped by every commit).
    pub fn generation(&self) -> u64 {
        self.front.generation()
    }

    /// Answers a query: the top-`k` documents, best first.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query` and call `SearchHandle::query`"
    )]
    pub fn search(&self, query: &[TermId], k: usize) -> Vec<SearchResult> {
        self.query(&Query::terms(query.iter().copied()).top_k(k))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    /// Answers a whitespace-separated text query against the engine's
    /// current dictionary snapshot. Unknown words follow the engine's
    /// no-pattern policy, as in `BurstySearchEngine::search_text`.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query::text(..)` and call `SearchHandle::query`"
    )]
    pub fn search_text(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let unknown = match self.front.config().no_pattern {
            NoPatternPolicy::Exclude => UnknownWords::EmptyResponse,
            NoPatternPolicy::Zero => UnknownWords::Drop,
        };
        self.query(&Query::text(query).top_k(k).unknown_words(unknown))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    /// Answers a batch of queries.
    #[deprecated(
        since = "0.2.0",
        note = "build typed `Query` values and call `SearchHandle::query_many`"
    )]
    pub fn search_many(&self, queries: &[Vec<TermId>], k: usize) -> Vec<Vec<SearchResult>> {
        let typed: Vec<Query> = queries
            .iter()
            .map(|q| Query::terms(q.iter().copied()).top_k(k))
            .collect();
        self.query_many(&typed)
            .into_iter()
            .map(|r| r.map(|response| response.results).unwrap_or_default())
            .collect()
    }

    /// Registers a standing subscription for `query`: the pipeline
    /// evaluates it after every commit whose dirty terms intersect the
    /// query's (deduplicated) term set and pushes a
    /// [`stb_subscribe::ResultDiff`] into the returned handle's channel.
    /// See [`SubscriptionRegistry::subscribe`].
    pub fn subscribe(
        &self,
        query: &Query,
        options: SubscriptionOptions,
    ) -> Result<SubscriptionHandle, QueryError> {
        self.subscriptions.subscribe(query, options)
    }

    /// The standing-subscription registry this handle registers into —
    /// for enumeration ([`SubscriptionRegistry::subscriptions`]),
    /// unsubscription by id, and subscription metrics.
    pub fn subscriptions(&self) -> &Arc<SubscriptionRegistry> {
        &self.subscriptions
    }

    /// The current generation's collection snapshot.
    pub fn collection(&self) -> Arc<Collection> {
        self.front.collection()
    }

    /// The serving counters: engine counters as of the last publish, cache
    /// counters read live from the shard caches.
    pub fn metrics(&self) -> EngineMetrics {
        self.front.metrics()
    }
}

/// A document staged for the open tick.
#[derive(Debug, Clone)]
struct StagedDoc {
    stream: StreamId,
    counts: HashMap<TermId, u32>,
}

/// The live ingestion pipeline. See the module docs for the design.
///
/// # Example
///
/// ```
/// use stb_ingest::{IngestConfig, IngestPipeline, Query};
/// use stb_geo::GeoPoint;
/// use std::collections::HashMap;
///
/// let mut pipeline = IngestPipeline::new(IngestConfig {
///     timeline_capacity: 8,
///     ..Default::default()
/// });
/// let athens = pipeline.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let lima = pipeline.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
/// let quake = pipeline.intern("earthquake");
///
/// let handle = pipeline.search_handle();
/// for tick in 0..8 {
///     let f = if (2..=4).contains(&tick) { 20 } else { 1 };
///     pipeline.stage_document(athens, HashMap::from([(quake, f)]));
///     pipeline.stage_document(lima, HashMap::from([(quake, 1)]));
///     let receipt = pipeline.commit_tick();
///     assert_eq!(receipt.tick, tick);
///     // Queries are answerable at every tick, concurrently with ingest.
///     let _ = handle.query(&Query::terms([quake]).top_k(3));
/// }
/// let top = handle.query(&Query::terms([quake]).top_k(3)).unwrap().results;
/// assert!(!top.is_empty());
/// // The burst documents come from Athens during the burst window.
/// let collection = handle.collection();
/// let best = collection.document(top[0].doc);
/// assert_eq!(collection.stream(best.stream).name, "Athens");
/// assert!((2..=4).contains(&best.timestamp));
/// ```
pub struct IngestPipeline {
    live: LiveCollection,
    /// The sharded write side; its [`ServingFront`] serves lock-free reads.
    engine: ShardedEngine,
    miner: MinerKind,
    /// One online miner per term ever seen (`STLocal` mode only).
    local_miners: HashMap<TermId, STLocal>,
    staged: Vec<StagedDoc>,
    /// Terms occurring in the staged documents of the open tick.
    dirty: BTreeSet<TermId>,
    /// A stream was added since the last commit: per-term miner state is
    /// positional and must be rebuilt from collection history.
    structural_dirty: bool,
    /// The timeline length changed (or a structural change happened), so
    /// every term's `STComb` view is stale.
    comb_all_dirty: bool,
    ticks_committed: usize,
    docs_ingested: Arc<Counter>,
    catchup_replays: Arc<Counter>,
    last_commit_ms: f64,
    total_commit_ms: f64,
    /// The durable store, if this pipeline was opened with
    /// [`IngestPipeline::durable`].
    store: Option<Store>,
    /// The open WAL writer (durable pipelines only; dropped on an append
    /// failure and re-opened by degraded-mode recovery).
    wal: Option<WalWriter>,
    /// Streams already recorded in the snapshot, the WAL, or the degraded
    /// buffer; the next tick record logs only registrations beyond this
    /// count. Buffered records count as logically logged — they carry the
    /// registrations and will reach the log when the buffer replays.
    logged_streams: usize,
    /// Terms already recorded in the snapshot, the WAL, or the buffer.
    logged_terms: usize,
    /// The durability state machine's discriminant (payload lives in
    /// `consecutive_failures` / `unlogged`).
    dur_state: DurState,
    /// Committed tick records awaiting replay into a re-opened log
    /// (degraded mode only; bounded by `max_buffered_ticks`).
    unlogged: Vec<TickRecord>,
    /// Store failures since durability was last intact.
    consecutive_failures: u32,
    /// The most recent store failure (cleared on return to `Durable`).
    last_error: Option<StoreError>,
    /// Shared health cell mirrored into every [`SearchHandle`].
    health_cell: Arc<Mutex<HealthReport>>,
    /// Quarantined poison documents, oldest first (bounded).
    quarantine: VecDeque<QuarantinedDoc>,
    /// Lifetime counters. `Arc<Counter>` cells rather than plain integers
    /// so [`IngestPipeline::attach_obs`] can adopt the *same* cells into
    /// the observability registry — [`PipelineMetrics`] and
    /// [`HealthReport`] stay exact views of what the registry exports.
    quarantined_total: Arc<Counter>,
    docs_shed: Arc<Counter>,
    wal_appends: Arc<Counter>,
    wal_failures: Arc<Counter>,
    store_retries: Arc<Counter>,
    recoveries: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    /// Attached observability bundle, if any (commit traces, durability
    /// gauges; search/WAL instrumentation is attached to the engine front
    /// and log writers directly).
    obs: Option<Arc<PipelineObs>>,
    /// When the current durability state was entered (drives the
    /// time-in-state gauge and [`HealthReport::durability_state_secs`]).
    dur_state_since: Instant,
    /// The state the last health publish saw, for transition detection.
    dur_state_seen: DurState,
    ticks_since_checkpoint: usize,
    checkpoint_every_ticks: usize,
    durability: Durability,
    retry: RetryPolicy,
    max_buffered_ticks: usize,
    max_staged_docs: usize,
    backpressure: Backpressure,
    max_terms_per_doc: usize,
    max_quarantined_docs: usize,
    /// Standing subscriptions, notified after every publish whose dirty
    /// terms intersect a registration's term set. Shared with every
    /// [`SearchHandle`]; survives durable recovery because restore
    /// republishes through the same [`ServingFront`].
    subscriptions: Arc<SubscriptionRegistry>,
}

impl IngestPipeline {
    /// Creates an empty pipeline (no streams, no documents). Streams can be
    /// registered and documents staged immediately.
    pub fn new(config: IngestConfig) -> Self {
        let live = LiveCollection::new(config.timeline_capacity);
        let mut engine = ShardedEngine::new(
            live.snapshot(),
            config.engine,
            config.n_shards,
            config.cache_capacity,
        );
        // Prebuild the (empty) posting index so every later pattern delta
        // takes the incremental per-term path, and publish generation 1 so
        // handles can serve before the first commit.
        engine.finalize_with_threads(1);
        engine.publish();
        let subscriptions = Arc::new(SubscriptionRegistry::new(engine.front()));
        Self {
            live,
            engine,
            miner: config.miner,
            local_miners: HashMap::new(),
            staged: Vec::new(),
            dirty: BTreeSet::new(),
            structural_dirty: false,
            comb_all_dirty: false,
            ticks_committed: 0,
            docs_ingested: Arc::new(Counter::new()),
            catchup_replays: Arc::new(Counter::new()),
            last_commit_ms: 0.0,
            total_commit_ms: 0.0,
            store: None,
            wal: None,
            logged_streams: 0,
            logged_terms: 0,
            dur_state: DurState::Durable,
            unlogged: Vec::new(),
            consecutive_failures: 0,
            last_error: None,
            health_cell: Arc::new(Mutex::new(HealthReport::default())),
            quarantine: VecDeque::new(),
            quarantined_total: Arc::new(Counter::new()),
            docs_shed: Arc::new(Counter::new()),
            wal_appends: Arc::new(Counter::new()),
            wal_failures: Arc::new(Counter::new()),
            store_retries: Arc::new(Counter::new()),
            recoveries: Arc::new(Counter::new()),
            checkpoints: Arc::new(Counter::new()),
            checkpoint_failures: Arc::new(Counter::new()),
            obs: None,
            dur_state_since: Instant::now(),
            dur_state_seen: DurState::Durable,
            ticks_since_checkpoint: 0,
            checkpoint_every_ticks: config.checkpoint_every_ticks,
            durability: config.durability,
            retry: config.retry,
            max_buffered_ticks: config.max_buffered_ticks,
            max_staged_docs: config.max_staged_docs,
            backpressure: config.backpressure,
            max_terms_per_doc: config.max_terms_per_doc,
            max_quarantined_docs: config.max_quarantined_docs,
            subscriptions,
        }
    }

    /// Opens a pipeline backed by a durable store at `dir`, recovering any
    /// previously persisted state.
    ///
    /// A fresh directory starts an empty pipeline whose commits are
    /// write-ahead logged. A directory holding a snapshot and/or WAL
    /// recovers as `load_snapshot + replay_wal`: the snapshot restores the
    /// collection, mined patterns (with their captured spatial
    /// footprints), posting lists (scores bit-for-bit), and pending
    /// bookkeeping; WAL records beyond the snapshot's tick are then
    /// re-committed. A torn WAL tail (crash artifact) is discarded and
    /// repaired transparently; a corrupt snapshot or mid-log corruption is
    /// a hard [`StoreError`] — the pipeline never silently starts empty
    /// over bad data.
    pub fn durable(
        config: IngestConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::durable_with_store(config, Store::open(dir.as_ref())?)
    }

    /// [`IngestPipeline::durable`] over an already-opened [`Store`] — the
    /// entry point for chaos testing, which injects a store opened with
    /// [`Store::open_with_faults`].
    pub fn durable_with_store(
        config: IngestConfig,
        store: Store,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let snapshot = store.load_snapshot()?;
        let replay = store.read_wal()?;
        let durability = config.durability;

        let mut report = RecoveryReport {
            wal_bytes_discarded: replay.discarded_bytes,
            ..RecoveryReport::default()
        };
        let mut pipeline = Self::new(config);

        if let Some(state) = snapshot {
            report.snapshot_loaded = true;
            report.snapshot_ticks = state.ticks_committed;
            pipeline.live = LiveCollection::from_collection(Arc::clone(&state.collection));
            // A fresh engine over the recovered collection re-derives the
            // term→documents map deterministically; the persisted state
            // restores patterns and posting lists without re-scoring. The
            // restore rebuilds every shard and publishes a new generation
            // through the existing front (handles stay valid).
            pipeline
                .engine
                .restore(Arc::clone(&state.collection), state.engine);
            pipeline.ticks_committed = usize::try_from(state.ticks_committed)
                .map_err(|_| StoreError::corrupt("snapshot", "tick count out of range"))?;
            pipeline.structural_dirty = state.pending.structural_dirty;
            pipeline.comb_all_dirty = state.pending.comb_all_dirty;
            pipeline.dirty = state.pending.dirty_terms.iter().copied().collect();
            for doc in &state.pending.staged {
                pipeline.staged.push(StagedDoc {
                    stream: doc.stream,
                    counts: doc.counts.iter().copied().collect(),
                });
            }
        }

        for record in replay.ticks {
            if record.tick < pipeline.ticks_committed as u64 {
                // Already inside the snapshot: a crash landed between the
                // snapshot rename and the WAL reset.
                report.wal_ticks_skipped += 1;
                continue;
            }
            if report.snapshot_loaded && record.tick == report.snapshot_ticks {
                // The snapshot may have been taken mid-tick, with documents
                // staged; the WAL record that later committed this tick
                // holds *every* staged document (the log was reset at
                // checkpoint time), so the record is authoritative —
                // replaying it on top of the restored pending docs would
                // apply the pre-checkpoint ones twice.
                pipeline.staged.clear();
                pipeline.dirty.clear();
            }
            pipeline.apply_wal_record(record)?;
            report.wal_ticks_replayed += 1;
        }

        // Everything now in the collection is covered by snapshot + WAL.
        pipeline.logged_streams = pipeline.live.n_streams();
        pipeline.logged_terms = pipeline.live.dict().len();
        let policy = pipeline.retry.clone();
        let (writer, retries) = policy.run(|| store.wal_writer(replay.valid_len, durability));
        pipeline.store_retries.add(u64::from(retries));
        pipeline.wal = Some(writer?);
        pipeline.store = Some(store);
        pipeline.publish_health();
        Ok((pipeline, report))
    }

    /// Re-commits one WAL record during recovery (no re-logging).
    fn apply_wal_record(&mut self, record: TickRecord) -> Result<(), StoreError> {
        if record.tick != self.ticks_committed as u64 {
            return Err(StoreError::corrupt(
                "wal record",
                format!(
                    "tick {} does not follow the {} ticks committed so far",
                    record.tick, self.ticks_committed
                ),
            ));
        }
        for s in &record.new_streams {
            let n = self.live.n_streams();
            if s.index.index() < n {
                // Already restored by the snapshot; must NOT re-mark the
                // structural flag the snapshot's pending state settled.
                continue;
            }
            if s.index.index() != n {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("stream index {} with {n} streams present", s.index.0),
                ));
            }
            // Goes through the public path so the structural flag is set
            // exactly as in the original run.
            self.add_stream_with_position(&s.name, s.geostamp, s.position);
        }
        for t in &record.new_terms {
            let n = self.live.dict().len();
            if t.id.index() < n {
                continue;
            }
            if t.id.index() != n {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("term id {} with {n} terms interned", t.id.0),
                ));
            }
            let id = self.live.intern(&t.text);
            if id != t.id {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!(
                        "term {:?} interned as {} instead of {}",
                        t.text, id.0, t.id.0
                    ),
                ));
            }
        }
        for d in &record.docs {
            if d.stream.index() >= self.live.n_streams() {
                return Err(StoreError::corrupt(
                    "wal record",
                    format!("document references unknown stream {}", d.stream.0),
                ));
            }
            // Bypass quarantine and backpressure: WAL records were
            // validated when first committed (and re-validated above), and
            // replay must reproduce the original run bit-identically.
            self.stage_raw(d.stream, d.counts.iter().copied().collect());
        }
        self.apply_commit(None);
        Ok(())
    }

    /// Attaches an observability bundle to the whole pipeline:
    ///
    /// * the serving-side [`stb_search::SearchObs`] goes to the engine's
    ///   lock-free front (query latency, TA-scan stats, trace sampling,
    ///   slow-query log);
    /// * the [`stb_store::WalObs`] cells go to the open log writer — and
    ///   to every writer the pipeline re-opens later (degraded-mode
    ///   recovery, checkpoint rotation);
    /// * the pipeline's own lifetime counter cells are *adopted* into the
    ///   registry (`ingest_docs_total`, `ingest_wal_appends_total`, …) —
    ///   the same cells [`PipelineMetrics`] and [`HealthReport`] read, so
    ///   the registry's exposition reconciles exactly with them;
    /// * commits start feeding the `ingest_commit_ns` histogram and the
    ///   sampled commit trace ring, and health publishes refresh the
    ///   durability and queue-depth gauges.
    ///
    /// Attaching is idempotent in effect (re-adopting the same cells is a
    /// no-op) and expected to happen once, right after construction. An
    /// un-attached pipeline records nothing beyond its own counters.
    pub fn attach_obs(&mut self, obs: &Arc<PipelineObs>) {
        self.engine.attach_obs(Arc::clone(obs.search()));
        let registry = obs.registry();
        registry.adopt_counter("ingest_docs_total", Arc::clone(&self.docs_ingested));
        registry.adopt_counter("ingest_docs_shed_total", Arc::clone(&self.docs_shed));
        registry.adopt_counter(
            "ingest_quarantined_total",
            Arc::clone(&self.quarantined_total),
        );
        registry.adopt_counter(
            "ingest_catchup_replays_total",
            Arc::clone(&self.catchup_replays),
        );
        registry.adopt_counter("ingest_wal_appends_total", Arc::clone(&self.wal_appends));
        registry.adopt_counter("ingest_wal_failures_total", Arc::clone(&self.wal_failures));
        registry.adopt_counter(
            "ingest_store_retries_total",
            Arc::clone(&self.store_retries),
        );
        registry.adopt_counter("ingest_recoveries_total", Arc::clone(&self.recoveries));
        registry.adopt_counter("ingest_checkpoints_total", Arc::clone(&self.checkpoints));
        registry.adopt_counter(
            "ingest_checkpoint_failures_total",
            Arc::clone(&self.checkpoint_failures),
        );
        if let Some(w) = self.wal.as_mut() {
            w.set_obs(obs.wal().clone());
        }
        self.subscriptions.register_obs(registry);
        self.obs = Some(Arc::clone(obs));
        self.publish_health();
    }

    /// The attached observability bundle, if any.
    pub fn obs(&self) -> Option<&Arc<PipelineObs>> {
        self.obs.as_ref()
    }

    /// A cloneable query handle over the engine's lock-free serving front.
    pub fn search_handle(&self) -> SearchHandle {
        SearchHandle {
            front: self.engine.front(),
            health: Arc::clone(&self.health_cell),
            subscriptions: Arc::clone(&self.subscriptions),
        }
    }

    /// Registers a standing subscription for `query`, evaluated after
    /// every commit whose dirty terms intersect the query's term set.
    /// Equivalent to [`SearchHandle::subscribe`].
    pub fn subscribe(
        &self,
        query: &Query,
        options: SubscriptionOptions,
    ) -> Result<SubscriptionHandle, QueryError> {
        self.subscriptions.subscribe(query, options)
    }

    /// The standing-subscription registry shared with every
    /// [`SearchHandle`].
    pub fn subscriptions(&self) -> &Arc<SubscriptionRegistry> {
        &self.subscriptions
    }

    /// The live collection's current snapshot (includes staged-but-uncommitted
    /// ticks' *streams and terms*, but documents only after their commit).
    pub fn collection(&self) -> Arc<Collection> {
        self.live.snapshot()
    }

    /// Number of ticks committed so far — also the index of the open tick.
    pub fn ticks_committed(&self) -> usize {
        self.ticks_committed
    }

    /// Current timeline length of the live collection.
    pub fn timeline_len(&self) -> usize {
        self.live.timeline_len()
    }

    /// Interns a term (new or existing) into the live dictionary.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.live.intern(term)
    }

    /// Registers a new stream; takes effect for miners at the next commit.
    pub fn add_stream(&mut self, name: &str, geostamp: GeoPoint) -> StreamId {
        let id = self.live.add_stream(name, geostamp);
        self.mark_structural();
        id
    }

    /// Registers a new stream with an explicit planar position.
    pub fn add_stream_with_position(
        &mut self,
        name: &str,
        geostamp: GeoPoint,
        position: Point2D,
    ) -> StreamId {
        let id = self.live.add_stream_with_position(name, geostamp, position);
        self.mark_structural();
        id
    }

    fn mark_structural(&mut self) {
        self.structural_dirty = true;
        self.comb_all_dirty = true;
    }

    /// Stages a document for the open tick, shorthand for
    /// [`IngestPipeline::try_stage_document`] when the caller does not
    /// inspect outcomes: poison documents are quarantined silently and a
    /// full staging buffer follows the configured [`Backpressure`] policy.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full under [`Backpressure::Error`] — that
    /// policy demands the caller handle refusal, so use the fallible
    /// method with it.
    pub fn stage_document(&mut self, stream: StreamId, counts: HashMap<TermId, u32>) {
        #[allow(clippy::expect_used)]
        self.try_stage_document(stream, counts)
            .expect("staging buffer full under Backpressure::Error");
    }

    /// Stages a document for the open tick, reporting how it was disposed
    /// of.
    ///
    /// Poison inputs — an unknown stream (applying it would panic the
    /// commit), a term id beyond the dictionary (it would poison WAL
    /// replay and scoring), or a term count over
    /// [`IngestConfig::max_terms_per_doc`] — go to the quarantine log
    /// instead of killing the tick. A staging buffer at
    /// [`IngestConfig::max_staged_docs`] triggers the configured
    /// [`Backpressure`] policy.
    pub fn try_stage_document(
        &mut self,
        stream: StreamId,
        counts: HashMap<TermId, u32>,
    ) -> Result<StageOutcome, IngestError> {
        if let Some(reason) = self.poison_reason(stream, &counts) {
            let mut sorted: Vec<(TermId, u32)> = counts.into_iter().collect();
            sorted.sort_by_key(|&(t, _)| t);
            if self.quarantine.len() >= self.max_quarantined_docs.max(1) {
                self.quarantine.pop_front();
            }
            self.quarantine.push_back(QuarantinedDoc {
                tick: self.ticks_committed,
                stream,
                counts: sorted,
                reason,
            });
            self.quarantined_total.inc();
            self.publish_health();
            return Ok(StageOutcome::Quarantined(reason));
        }
        if self.max_staged_docs > 0 && self.staged.len() >= self.max_staged_docs {
            match self.backpressure {
                Backpressure::Block => {
                    let receipt = self.commit_tick();
                    self.stage_raw(stream, counts);
                    self.publish_health();
                    return Ok(StageOutcome::StagedAfterCommit(Box::new(receipt)));
                }
                Backpressure::Shed => {
                    self.docs_shed.inc();
                    self.publish_health();
                    return Ok(StageOutcome::Shed);
                }
                Backpressure::Error => {
                    return Err(IngestError::StagingFull {
                        staged: self.staged.len(),
                        max: self.max_staged_docs,
                    });
                }
            }
        }
        self.stage_raw(stream, counts);
        Ok(StageOutcome::Staged)
    }

    /// Why `(stream, counts)` must not reach the commit path, if any.
    fn poison_reason(
        &self,
        stream: StreamId,
        counts: &HashMap<TermId, u32>,
    ) -> Option<QuarantineReason> {
        if stream.index() >= self.live.n_streams() {
            return Some(QuarantineReason::UnknownStream);
        }
        let n_terms = self.live.dict().len();
        if counts.keys().any(|t| t.index() >= n_terms) {
            return Some(QuarantineReason::UnknownTerm);
        }
        if self.max_terms_per_doc > 0 {
            let total: u64 = counts.values().map(|&c| u64::from(c)).sum();
            if total > self.max_terms_per_doc as u64 {
                return Some(QuarantineReason::OversizedDoc);
            }
        }
        None
    }

    /// Unchecked staging: trusted callers only (validated inputs and WAL
    /// replay, which must be bit-identical to the original run).
    fn stage_raw(&mut self, stream: StreamId, counts: HashMap<TermId, u32>) {
        self.dirty.extend(counts.keys().copied());
        self.staged.push(StagedDoc { stream, counts });
    }

    /// The quarantine log, oldest first (bounded by
    /// [`IngestConfig::max_quarantined_docs`]).
    pub fn quarantine_log(&self) -> impl Iterator<Item = &QuarantinedDoc> {
        self.quarantine.iter()
    }

    /// Stages a raw-text document for the open tick, tokenizing with
    /// `tokenizer` and interning new terms into the live dictionary.
    pub fn stage_text_document(&mut self, stream: StreamId, text: &str, tokenizer: &Tokenizer) {
        let counts = self.live.term_counts(text, tokenizer);
        self.stage_document(stream, counts);
    }

    /// Commits the open tick: applies the staged documents, advances every
    /// tracked term's online burst state, re-mines the dirty terms, and
    /// publishes the new snapshot plus its [`PatternDelta`]s to the engine.
    ///
    /// Committing with no staged documents is valid (an empty tick) and is
    /// required for batch equivalence: the streaming miners must observe
    /// every timestamp, occupied or not.
    ///
    /// On a durable pipeline the tick is appended to the write-ahead log
    /// *before* it is applied (transient failures retried under
    /// [`IngestConfig::retry`]), so a crash at any point leaves either a
    /// log without the tick or a log from which the tick replays exactly.
    /// Log failures never fail the commit: the pipeline degrades through
    /// the [`DurabilityState`] machine — buffering the record, retrying
    /// recovery on subsequent commits — and the receipt's `durability`
    /// field reports where it landed.
    pub fn commit_tick(&mut self) -> TickReceipt {
        let mut clock = self.obs.is_some().then(SpanClock::start);
        if self.store.is_some() {
            self.log_open_tick();
            if let Some(c) = clock.as_mut() {
                c.lap(SpanKind::WalAppend);
            }
        }
        let mut receipt = self.apply_commit(clock.as_mut());
        if let (Some(obs), Some(clock)) = (&self.obs, clock) {
            obs.record_commit(clock);
        }
        self.ticks_since_checkpoint += 1;
        if self.store.is_some()
            && self.checkpoint_every_ticks > 0
            && self.ticks_since_checkpoint >= self.checkpoint_every_ticks
            && self.dur_state == DurState::Durable
        {
            // An auto-checkpoint failure is not a durability loss — the WAL
            // still holds every tick — so it only bumps the failure counter
            // (inside `checkpoint`) and compaction is retried next commit.
            let _ = self.checkpoint();
        }
        receipt.durability = self.durability_state();
        self.publish_health();
        receipt
    }

    /// Routes the open tick's record through the durability state machine.
    fn log_open_tick(&mut self) {
        let record = self.build_tick_record();
        // The record captures all registrations since the last logged
        // tick, whether it reaches the WAL now or waits in the degraded
        // buffer — advance the watermarks either way so the next record
        // does not re-capture them.
        self.logged_streams = self.live.n_streams();
        self.logged_terms = self.live.dict().len();
        match self.dur_state {
            DurState::Durable => self.append_record(record),
            DurState::Degraded => {
                self.unlogged.push(record);
                if self.unlogged.len() > self.max_buffered_ticks {
                    self.enter_non_durable();
                } else {
                    self.try_restore();
                }
            }
            // Fail-stop: logging has ceased until an explicit checkpoint
            // succeeds (which persists everything, making the record moot).
            DurState::NonDurable => {}
        }
    }

    /// Appends one record in the `Durable` state, retrying transient
    /// failures; on exhaustion the state machine degrades.
    fn append_record(&mut self, record: TickRecord) {
        let policy = self.retry.clone();
        let (result, retries) = match self.wal.as_mut() {
            Some(w) => policy.run(|| w.append(&record)),
            // Store configured but the writer is gone in the Durable state:
            // an invariant breach surfaced as a typed, permanent error
            // rather than a mislabelled corruption error.
            None => (Err(StoreError::WalClosed), 0),
        };
        self.store_retries.add(u64::from(retries));
        match result {
            Ok(()) => self.wal_appends.inc(),
            Err(e) => {
                // Drop the writer: nothing may be stacked on top of a
                // possibly half-written frame; recovery re-opens at the
                // verified valid length.
                self.wal = None;
                self.wal_failures.inc();
                self.consecutive_failures += 1;
                let transient = e.is_transient();
                self.last_error = Some(e);
                if transient && self.max_buffered_ticks > 0 {
                    self.dur_state = DurState::Degraded;
                    self.unlogged.push(record);
                } else {
                    self.enter_non_durable();
                }
            }
        }
    }

    /// Fail-stop. The buffer is dropped: its records are already applied
    /// in memory, and the only way back to durability — an explicit
    /// successful checkpoint — snapshots the full state anyway.
    fn enter_non_durable(&mut self) {
        self.dur_state = DurState::NonDurable;
        self.wal = None;
        self.unlogged.clear();
    }

    /// One degraded-mode recovery attempt: re-read the log (computing
    /// which buffered ticks a failed-but-persisted append already placed
    /// on disk), re-open the writer at the verified valid length
    /// (truncating any torn partial frame), and replay the buffer.
    ///
    /// The whole attempt runs under the retry policy, and the disk state
    /// is re-read on every retry — a record that landed during a previous
    /// partial attempt is never appended twice.
    fn try_restore(&mut self) {
        let Some(store) = self.store.clone() else {
            return;
        };
        let durability = self.durability;
        let policy = self.retry.clone();
        let unlogged = &self.unlogged;
        let wal_obs = self.obs.as_ref().map(|o| o.wal().clone());
        let (result, retries) = policy.run(|| {
            let replay = store.read_wal()?;
            // A failed append (or a sync failure after a complete frame
            // write) may have left a fully valid record on disk. Buffered
            // records below `disk_next` are identical to their on-disk
            // twins — `build_tick_record` is deterministic — so they are
            // skipped, never duplicated.
            let disk_next = replay.ticks.last().map_or(0, |t| t.tick + 1);
            let mut writer = store.wal_writer(replay.valid_len, durability)?;
            if let Some(obs) = &wal_obs {
                writer.set_obs(obs.clone());
            }
            let mut appended = 0u64;
            for rec in unlogged.iter().filter(|rec| rec.tick >= disk_next) {
                writer.append(rec)?;
                appended += 1;
            }
            Ok((writer, appended))
        });
        self.store_retries.add(u64::from(retries));
        match result {
            Ok((writer, appended)) => {
                self.wal = Some(writer);
                self.wal_appends.add(appended);
                self.unlogged.clear();
                self.dur_state = DurState::Durable;
                self.consecutive_failures = 0;
                self.last_error = None;
                self.recoveries.inc();
            }
            Err(e) => {
                self.wal_failures.inc();
                self.consecutive_failures += 1;
                let transient = e.is_transient();
                self.last_error = Some(e);
                if !transient {
                    self.enter_non_durable();
                }
            }
        }
    }

    /// Attempts to return a `Degraded` pipeline to `Durable` immediately —
    /// re-opening the log and replaying the buffered ticks — without
    /// waiting for the next commit to do it. A no-op in every other state
    /// (`NonDurable` is fail-stop by design; see [`DurabilityState`]).
    /// Returns the state the pipeline is in afterwards.
    pub fn try_recover_durability(&mut self) -> DurabilityState {
        if self.store.is_some() && self.dur_state == DurState::Degraded {
            self.try_restore();
        }
        self.publish_health();
        self.durability_state()
    }

    /// The WAL record describing the open tick: everything registered or
    /// staged since the last logged tick (or checkpoint).
    fn build_tick_record(&self) -> TickRecord {
        let collection = self.live.collection();
        let new_streams = collection.streams()[self.logged_streams..]
            .iter()
            .map(|s| StreamRecord {
                index: s.id,
                name: s.name.clone(),
                geostamp: s.geostamp,
                position: s.position,
            })
            .collect();
        let new_terms = collection
            .dict()
            .iter()
            .skip(self.logged_terms)
            .map(|(id, text)| TermRecord {
                id,
                text: text.to_string(),
            })
            .collect();
        let docs = self
            .staged
            .iter()
            .map(|doc| {
                let mut counts: Vec<(TermId, u32)> =
                    doc.counts.iter().map(|(&t, &c)| (t, c)).collect();
                counts.sort_by_key(|&(t, _)| t);
                DocRecord {
                    stream: doc.stream,
                    counts,
                }
            })
            .collect();
        TickRecord {
            tick: self.ticks_committed as u64,
            new_streams,
            new_terms,
            docs,
        }
    }

    /// Applies the open tick to the in-memory state (the whole of
    /// [`IngestPipeline::commit_tick`] minus durability). The optional
    /// clock records the commit's stage breakdown (apply → mine →
    /// publish) for the sampled commit trace ring.
    fn apply_commit(&mut self, mut clock: Option<&mut SpanClock>) -> TickReceipt {
        let start = Instant::now();
        let tick = self.ticks_committed;

        // Grow the timeline if the open tick runs past it. This changes the
        // `B_T` normalization of every term's series, so the combinatorial
        // view of every term is re-mined below.
        if tick >= self.live.timeline_len() {
            self.live.extend_timeline(tick + 1);
            self.comb_all_dirty = true;
        }

        // Apply the staged documents (one copy-on-write generation).
        let staged = std::mem::take(&mut self.staged);
        let mut new_docs = Vec::with_capacity(staged.len());
        for doc in staged {
            new_docs.push(self.live.push_document(doc.stream, tick, doc.counts));
        }
        self.docs_ingested.add(new_docs.len() as u64);
        self.ticks_committed += 1;
        let snapshot = self.live.snapshot();
        if let Some(c) = clock.as_deref_mut() {
            c.lap(SpanKind::ApplyDocs);
        }

        let mut dirty = std::mem::take(&mut self.dirty);
        if self.structural_dirty {
            // Stream positions changed: per-term miner state is positional,
            // so drop it and re-derive every term from collection history.
            self.local_miners.clear();
            dirty.extend(snapshot.terms());
            self.structural_dirty = false;
        }
        if self.comb_all_dirty && matches!(self.miner, MinerKind::STComb(_)) {
            dirty.extend(snapshot.terms());
        }
        self.comb_all_dirty = false;

        // Mine. Dirty terms get fresh patterns; in STLocal mode every
        // tracked term additionally advances its online state by one tick.
        let mut deltas = Vec::with_capacity(dirty.len());
        match &self.miner {
            MinerKind::STLocal(config) => {
                for &term in &dirty {
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        self.local_miners.entry(term)
                    {
                        // Late-arriving term: replay its (mostly zero)
                        // history so its miner state matches a batch run.
                        let mut miner = STLocal::new(snapshot.positions(), config.clone());
                        for ts in 0..tick {
                            miner.step(&snapshot.term_snapshot(term, ts).frequencies);
                        }
                        slot.insert(miner);
                        self.catchup_replays.inc();
                    }
                }
                let mut tracked: Vec<TermId> = self.local_miners.keys().copied().collect();
                tracked.sort();
                for term in tracked {
                    let snap = snapshot.term_snapshot(term, tick);
                    if let Some(miner) = self.local_miners.get_mut(&term) {
                        miner.step(&snap.frequencies);
                    }
                }
                for &term in &dirty {
                    deltas.push(PatternDelta::Regional {
                        term,
                        patterns: self.local_miners[&term].patterns(),
                    });
                }
            }
            MinerKind::STComb(config) => {
                let miner = STComb::with_config(config.clone());
                for &term in &dirty {
                    deltas.push(PatternDelta::Combinatorial {
                        term,
                        patterns: miner.mine_collection(&snapshot, term),
                    });
                }
            }
        }

        if let Some(c) = clock.as_deref_mut() {
            c.lap(SpanKind::Mine);
        }

        // Publish: swap the snapshot in, apply the per-term deltas, and
        // push one new serving generation to the lock-free front. Readers
        // never block on this — they keep serving the previous generation
        // until the publish lands.
        self.engine
            .update_collection(Arc::clone(&snapshot), &new_docs);
        for delta in &deltas {
            match delta {
                PatternDelta::Regional { term, patterns } => {
                    self.engine.set_patterns(*term, patterns);
                }
                PatternDelta::Combinatorial { term, patterns } => {
                    self.engine.set_patterns(*term, patterns);
                }
            }
        }
        // Under tf-idf every term's relevance depends on the corpus
        // document count, so new documents stale every posting list.
        if self.engine.engine().config().relevance == Relevance::TfIdf && !new_docs.is_empty() {
            for term in snapshot.terms() {
                self.engine.refresh_term(term);
            }
        }
        // Under tf-idf the refresh above re-scored *every* posting list,
        // so every subscribed term may have moved, not just the mined set.
        let tfidf_refresh =
            self.engine.engine().config().relevance == Relevance::TfIdf && !new_docs.is_empty();
        self.engine.publish();
        if let Some(c) = clock.as_deref_mut() {
            c.lap(SpanKind::Publish);
        }

        // Notify standing subscriptions against the generation just
        // published: intersect this tick's trigger terms with the
        // registry's term index, re-evaluate only the affected
        // registrations, and push diffs. Runs inside the commit, so the
        // notification cost is visible in commit latency (and gated by
        // `bench_subscribe`).
        if !self.subscriptions.is_empty() {
            let mut trigger_terms = dirty;
            if tfidf_refresh {
                trigger_terms.extend(snapshot.terms());
            }
            let by_term: HashMap<TermId, &PatternDelta> =
                deltas.iter().map(|d| (d.term(), d)).collect();
            let positions: std::cell::OnceCell<Vec<Point2D>> = std::cell::OnceCell::new();
            let report = self
                .subscriptions
                .on_commit(tick as u64, &trigger_terms, |term| {
                    let Some(delta) = by_term.get(&term) else {
                        // Dirty via the tf-idf refresh only: scores moved but
                        // no re-mining happened, so there is nothing to attach.
                        return Vec::new();
                    };
                    let positions = positions.get_or_init(|| snapshot.positions());
                    match delta {
                        PatternDelta::Regional { patterns, .. } => patterns
                            .iter()
                            .map(|p| PatternRecord::capture(p, positions))
                            .collect(),
                        PatternDelta::Combinatorial { patterns, .. } => patterns
                            .iter()
                            .map(|p| PatternRecord::capture(p, positions))
                            .collect(),
                    }
                });
            if report.evaluated > 0 {
                if let Some(c) = clock {
                    c.lap(SpanKind::Notify);
                }
            }
        }

        let commit_ms = start.elapsed().as_secs_f64() * 1000.0;
        self.last_commit_ms = commit_ms;
        self.total_commit_ms += commit_ms;
        TickReceipt {
            tick,
            new_docs,
            deltas,
            commit_ms,
            durability: self.durability_state(),
        }
    }

    /// Writes a snapshot of the full current state (collection, patterns,
    /// posting lists, pending bookkeeping) and truncates the WAL back to
    /// empty — the periodic compaction that bounds recovery time. Returns
    /// the snapshot size in bytes.
    ///
    /// The ordering is crash-safe: the snapshot is renamed into place
    /// (atomically) *before* the log is truncated, and WAL replay skips
    /// records the snapshot already covers, so a crash between the two
    /// steps only costs some redundant skipping on recovery.
    ///
    /// Both the snapshot write and the WAL rotation are retried under
    /// [`IngestConfig::retry`]. A successful checkpoint also *recovers*
    /// durability: the snapshot covers every committed tick (including any
    /// the degraded buffer held), so the buffer is dropped, the log is
    /// rotated fresh, and the state machine returns to
    /// [`DurabilityState::Durable`] — the explicit operator path out of
    /// [`DurabilityState::NonDurable`].
    ///
    /// # Errors
    ///
    /// [`StoreError::NotDurable`] on a pipeline without a store; any I/O
    /// or serialization failure (post-retry) otherwise.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let store = self.store.clone().ok_or(StoreError::NotDurable)?;
        let state = self.export_snapshot_state();
        let policy = self.retry.clone();
        let (result, retries) = policy.run(|| store.write_snapshot(&state));
        self.store_retries.add(u64::from(retries));
        let bytes = match result {
            Ok(b) => b,
            Err(e) => {
                // The snapshot never replaced the previous one (atomic
                // rename), and the WAL is untouched: durability state is
                // unchanged, only the compaction failed.
                self.checkpoint_failures.inc();
                self.publish_health();
                return Err(e);
            }
        };
        // The snapshot now durably covers everything committed; the
        // degraded buffer and the old log contents are obsolete.
        self.unlogged.clear();
        if let Err(e) = self.rotate_wal(&store) {
            // Data is safe (the snapshot landed) but the log could not be
            // rotated: degrade so subsequent commits retry the re-open.
            self.wal = None;
            self.wal_failures.inc();
            self.consecutive_failures += 1;
            self.checkpoint_failures.inc();
            let transient = e.is_transient();
            self.dur_state = if transient {
                DurState::Degraded
            } else {
                DurState::NonDurable
            };
            self.last_error = Some(e.duplicate());
            self.publish_health();
            return Err(e);
        }
        if self.dur_state != DurState::Durable {
            self.recoveries.inc();
        }
        self.dur_state = DurState::Durable;
        self.consecutive_failures = 0;
        self.last_error = None;
        self.logged_streams = self.live.n_streams();
        self.logged_terms = self.live.dict().len();
        self.checkpoints.inc();
        self.ticks_since_checkpoint = 0;
        self.publish_health();
        Ok(bytes)
    }

    /// Truncates the open log back to its header, re-opening the writer
    /// first if an earlier failure dropped it. Retried under the policy.
    fn rotate_wal(&mut self, store: &Store) -> Result<(), StoreError> {
        let policy = self.retry.clone();
        match self.wal.as_mut() {
            Some(w) => {
                let (result, retries) = policy.run(|| w.reset());
                self.store_retries.add(u64::from(retries));
                result
            }
            None => {
                let durability = self.durability;
                let wal_obs = self.obs.as_ref().map(|o| o.wal().clone());
                let (result, retries) = policy.run(|| {
                    let replay = store.read_wal()?;
                    let mut w = store.wal_writer(replay.valid_len, durability)?;
                    if let Some(obs) = &wal_obs {
                        w.set_obs(obs.clone());
                    }
                    w.reset()?;
                    Ok(w)
                });
                self.store_retries.add(u64::from(retries));
                self.wal = Some(result?);
                Ok(())
            }
        }
    }

    /// Exports the pipeline's full state as a snapshot value (what
    /// [`IngestPipeline::checkpoint`] persists).
    pub fn export_snapshot_state(&self) -> SnapshotState {
        let mut staged = Vec::with_capacity(self.staged.len());
        for doc in &self.staged {
            let mut counts: Vec<(TermId, u32)> = doc.counts.iter().map(|(&t, &c)| (t, c)).collect();
            counts.sort_by_key(|&(t, _)| t);
            staged.push(DocRecord {
                stream: doc.stream,
                counts,
            });
        }
        SnapshotState {
            ticks_committed: self.ticks_committed as u64,
            collection: self.live.snapshot(),
            engine: self.engine.export_state(),
            pending: PendingState {
                structural_dirty: self.structural_dirty,
                comb_all_dirty: self.comb_all_dirty,
                dirty_terms: self.dirty.iter().copied().collect(),
                staged,
            },
        }
    }

    /// The most recent store failure, while durability is not intact;
    /// `None` whenever the pipeline is fully durable (or ephemeral).
    #[deprecated(
        since = "0.6.0",
        note = "poll `IngestPipeline::health()` (or the per-commit `TickReceipt::durability`) \
                instead of this single latched error"
    )]
    pub fn wal_error(&self) -> Option<&StoreError> {
        match self.dur_state {
            DurState::Durable => None,
            DurState::Degraded | DurState::NonDurable => self.last_error.as_ref(),
        }
    }

    /// The durability contract the pipeline is currently honoring.
    pub fn durability_state(&self) -> DurabilityState {
        if self.store.is_none() {
            return DurabilityState::Ephemeral;
        }
        match self.dur_state {
            DurState::Durable => DurabilityState::Durable,
            DurState::Degraded => DurabilityState::Degraded {
                consecutive_failures: self.consecutive_failures,
                buffered_ticks: self.unlogged.len(),
            },
            DurState::NonDurable => DurabilityState::NonDurable,
        }
    }

    /// A current health summary: durability state, failure/retry counters,
    /// queue depths, quarantine size. See [`HealthReport`].
    pub fn health(&self) -> HealthReport {
        let sub_metrics = self.subscriptions.metrics();
        HealthReport {
            durability: self.durability_state(),
            staged_docs: self.staged.len(),
            max_staged_docs: self.max_staged_docs,
            buffered_ticks: self.unlogged.len(),
            max_buffered_ticks: self.max_buffered_ticks,
            dirty_terms: self.dirty.len(),
            wal_appends: self.wal_appends.get(),
            wal_failures: self.wal_failures.get(),
            store_retries: self.store_retries.get(),
            recoveries: self.recoveries.get(),
            checkpoints: self.checkpoints.get(),
            checkpoint_failures: self.checkpoint_failures.get(),
            docs_shed: self.docs_shed.get(),
            quarantined: self.quarantine.len(),
            quarantined_total: self.quarantined_total.get(),
            uptime_ticks: self.ticks_committed,
            last_commit_ms: self.last_commit_ms,
            durability_state_secs: self.dur_state_since.elapsed().as_secs_f64(),
            commit_p99_ms: self.obs.as_ref().and_then(|obs| {
                let snap = obs.commit_latency().snapshot();
                (snap.count() > 0).then(|| snap.p99() as f64 / 1e6)
            }),
            subscriptions: sub_metrics.active,
            notifications: sub_metrics.notifications,
            notifications_dropped: sub_metrics.dropped,
            last_error: match self.dur_state {
                DurState::Durable => None,
                _ => self.last_error.as_ref().map(StoreError::to_string),
            },
        }
    }

    /// Refreshes the health cell shared with every [`SearchHandle`], and
    /// — when observability is attached — the durability and queue-depth
    /// gauges. Durability-state *transitions* are detected here: every
    /// public mutating operation ends in a publish, so the time-in-state
    /// clock restarts within the same call that changed the state.
    fn publish_health(&mut self) {
        let transitioned = self.dur_state_seen != self.dur_state;
        if transitioned {
            self.dur_state_seen = self.dur_state;
            self.dur_state_since = Instant::now();
        }
        if let Some(obs) = &self.obs {
            obs.set_durability(
                self.durability_code(),
                self.dur_state_since.elapsed().as_secs_f64(),
                transitioned,
            );
            obs.set_queue_depths(
                self.staged.len(),
                self.dirty.len(),
                self.unlogged.len(),
                self.quarantine.len(),
            );
        }
        let report = self.health();
        *self
            .health_cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = report;
    }

    /// The `ingest_durability_state` gauge encoding: 0 ephemeral,
    /// 1 durable, 2 degraded, 3 non-durable.
    fn durability_code(&self) -> f64 {
        if self.store.is_none() {
            return 0.0;
        }
        match self.dur_state {
            DurState::Durable => 1.0,
            DurState::Degraded => 2.0,
            DurState::NonDurable => 3.0,
        }
    }

    /// Whether this pipeline has a durable store attached.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The durable store directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(Store::dir)
    }

    /// The pipeline's current mining output for one term: the live
    /// `STLocal` miner's accumulated windows, or a fresh combinatorial pass
    /// over the current collection. Useful for inspecting pattern state
    /// without going through a [`TickReceipt`].
    pub fn current_patterns(&self, term: TermId) -> PatternDelta {
        match &self.miner {
            MinerKind::STLocal(_) => PatternDelta::Regional {
                term,
                patterns: self
                    .local_miners
                    .get(&term)
                    .map(STLocal::patterns)
                    .unwrap_or_default(),
            },
            MinerKind::STComb(config) => PatternDelta::Combinatorial {
                term,
                patterns: STComb::with_config(config.clone())
                    .mine_collection(self.live.collection(), term),
            },
        }
    }

    /// A snapshot of the pipeline's counters.
    pub fn metrics(&self) -> PipelineMetrics {
        PipelineMetrics {
            ticks_committed: self.ticks_committed,
            docs_ingested: self.docs_ingested.get(),
            staged_docs: self.staged.len(),
            dirty_terms: self.dirty.len(),
            tracked_miners: self.local_miners.len(),
            catchup_replays: self.catchup_replays.get(),
            last_commit_ms: self.last_commit_ms,
            total_commit_ms: self.total_commit_ms,
            generation: self.live.generation(),
            durable: self.store.is_some(),
            wal_appends: self.wal_appends.get(),
            checkpoints: self.checkpoints.get(),
            engine: self.engine.metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_search::BurstySearchEngine;

    /// Typed-API term query through a live handle.
    fn run(handle: &SearchHandle, terms: &[TermId], k: usize) -> Vec<SearchResult> {
        handle
            .query(&Query::terms(terms.iter().copied()).top_k(k))
            .map(|r| r.results)
            .unwrap_or_default()
    }

    /// Typed-API term query against a reference engine.
    fn engine_run(engine: &BurstySearchEngine, terms: &[TermId], k: usize) -> Vec<SearchResult> {
        engine
            .query(&Query::terms(terms.iter().copied()).top_k(k))
            .map(|r| r.results)
            .unwrap_or_default()
    }

    /// Typed-API text query through a live handle; unknown words make the
    /// query vacuously empty (the live-serving default while a term has not
    /// arrived yet).
    fn run_text(handle: &SearchHandle, text: &str, k: usize) -> Vec<SearchResult> {
        handle
            .query(
                &Query::text(text)
                    .top_k(k)
                    .unknown_words(stb_search::UnknownWords::EmptyResponse),
            )
            .map(|r| r.results)
            .unwrap_or_default()
    }

    fn two_cluster_pipeline(miner: MinerKind, capacity: usize) -> (IngestPipeline, Vec<StreamId>) {
        let mut pipeline = IngestPipeline::new(IngestConfig {
            timeline_capacity: capacity,
            miner,
            ..Default::default()
        });
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        (pipeline, streams)
    }

    fn burst_tick(
        pipeline: &mut IngestPipeline,
        streams: &[StreamId],
        term: TermId,
        bursting: bool,
    ) -> TickReceipt {
        for (i, &s) in streams.iter().enumerate() {
            let f = if bursting && i < 2 { 25 } else { 1 };
            pipeline.stage_document(s, HashMap::from([(term, f)]));
        }
        pipeline.commit_tick()
    }

    #[test]
    fn stlocal_pipeline_detects_burst_and_serves_queries() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 20);
        let quake = pipeline.intern("quake");
        let handle = pipeline.search_handle();
        for tick in 0..20 {
            let receipt = burst_tick(&mut pipeline, &streams, quake, (8..11).contains(&tick));
            assert_eq!(receipt.tick, tick);
            assert!(receipt.deltas.iter().all(|d| d.term() == quake));
            // Queries never fail mid-stream.
            let _ = run(&handle, &[quake], 5);
        }
        let top = run(&handle, &[quake], 6);
        assert!(!top.is_empty());
        let collection = handle.collection();
        for hit in &top {
            let doc = collection.document(hit.doc);
            assert!((8..11).contains(&doc.timestamp), "hit outside the burst");
            assert!(doc.stream == streams[0] || doc.stream == streams[1]);
        }
    }

    #[test]
    fn stcomb_pipeline_detects_burst() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STComb(STCombConfig::default()), 20);
        let storm = pipeline.intern("storm");
        for tick in 0..20 {
            burst_tick(&mut pipeline, &streams, storm, (5..8).contains(&tick));
        }
        let handle = pipeline.search_handle();
        let top = run(&handle, &[storm], 6);
        assert!(!top.is_empty());
        let collection = handle.collection();
        for hit in &top {
            let doc = collection.document(hit.doc);
            assert!((5..8).contains(&doc.timestamp));
        }
    }

    #[test]
    fn empty_ticks_are_committed() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 0);
        let t = pipeline.intern("t");
        burst_tick(&mut pipeline, &streams, t, false);
        let receipt = pipeline.commit_tick(); // nothing staged
        assert_eq!(receipt.tick, 1);
        assert!(receipt.new_docs.is_empty());
        assert!(receipt.deltas.is_empty());
        assert_eq!(pipeline.ticks_committed(), 2);
        assert_eq!(pipeline.timeline_len(), 2); // grew on demand
    }

    #[test]
    fn unseen_term_is_searchable_after_it_arrives() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 12);
        let early = pipeline.intern("early");
        let handle = pipeline.search_handle();
        for _ in 0..5 {
            burst_tick(&mut pipeline, &streams, early, false);
        }
        // "late" is unknown to the engine's snapshot: empty results, no
        // panic (Exclude policy).
        assert!(run_text(&handle, "late", 5).is_empty());

        let late = pipeline.intern("late");
        for tick in 5..12 {
            for &s in &streams[..2] {
                let f = if (6..9).contains(&tick) { 30 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(late, f)]));
            }
            pipeline.commit_tick();
        }
        let hits = run_text(&handle, "late", 5);
        assert!(!hits.is_empty(), "late term must score once it arrived");
        let collection = handle.collection();
        assert!((6..9).contains(&collection.document(hits[0].doc).timestamp));
    }

    #[test]
    fn adding_a_stream_mid_flight_rebuilds_miners() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 16);
        let t = pipeline.intern("t");
        for _ in 0..4 {
            burst_tick(&mut pipeline, &streams, t, false);
        }
        let before = pipeline.metrics().catchup_replays;
        let d = pipeline.add_stream("D", GeoPoint::new(1.5, 0.5));
        let mut all = streams.clone();
        all.push(d);
        for tick in 4..16 {
            for (i, &s) in all.iter().enumerate() {
                let bursty = (6..9).contains(&tick) && (i < 2 || s == d);
                let f = if bursty { 25 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(t, f)]));
            }
            pipeline.commit_tick();
        }
        assert!(
            pipeline.metrics().catchup_replays > before,
            "the structural change must have rebuilt miner state"
        );
        let handle = pipeline.search_handle();
        let top = run(&handle, &[t], 3);
        assert!(!top.is_empty());
        let collection = handle.collection();
        assert!((6..9).contains(&collection.document(top[0].doc).timestamp));
    }

    #[test]
    fn cache_invalidation_is_per_dirty_term() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 20);
        let hot = pipeline.intern("hot");
        let cold = pipeline.intern("cold");
        let handle = pipeline.search_handle();
        // Both terms burst early so both have patterns.
        for tick in 0..10 {
            for &s in &streams[..2] {
                let f = if (2..5).contains(&tick) { 20 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(hot, f), (cold, f)]));
            }
            pipeline.commit_tick();
        }
        let _ = run(&handle, &[hot], 5);
        let _ = run(&handle, &[cold], 5);
        let misses_before = handle.metrics().cache_misses;
        // A tick touching only `hot` must keep `cold`'s cached entry.
        for &s in &streams[..2] {
            pipeline.stage_document(s, HashMap::from([(hot, 2)]));
        }
        pipeline.commit_tick();
        let _ = run(&handle, &[cold], 5); // hit
        assert_eq!(handle.metrics().cache_misses, misses_before);
        let _ = run(&handle, &[hot], 5); // miss: invalidated by the commit
        assert_eq!(handle.metrics().cache_misses, misses_before + 1);
    }

    #[test]
    fn tfidf_relevance_refreshes_all_terms() {
        // Under tf-idf the corpus document count enters every score, so the
        // pipeline must keep non-dirty terms' postings fresh too.
        let config = IngestConfig {
            timeline_capacity: 10,
            engine: EngineConfig::builder()
                .relevance(Relevance::TfIdf)
                .no_pattern(NoPatternPolicy::Zero)
                .build(),
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config.clone());
        let streams = [
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
        ];
        let a = pipeline.intern("a");
        let b = pipeline.intern("b");
        for tick in 0..10 {
            for &s in &streams {
                let mut counts = HashMap::from([(a, if tick == 3 { 15 } else { 1 })]);
                if tick < 5 {
                    counts.insert(b, 1);
                }
                pipeline.stage_document(s, counts);
            }
            pipeline.commit_tick();
        }
        let handle = pipeline.search_handle();
        let got = run(&handle, &[b], 30);

        // Oracle: a cold engine over the final snapshot with the same
        // patterns must agree, including the tf-idf weights.
        let collection = handle.collection();
        let mut reference = BurstySearchEngine::new(Arc::clone(&collection), config.engine);
        reference.set_cache_capacity(0);
        let (patterns, _) = STLocal::mine_collection(&collection, b, STLocalConfig::default());
        reference.set_patterns(b, &patterns);
        let (patterns_a, _) = STLocal::mine_collection(&collection, a, STLocalConfig::default());
        reference.set_patterns(a, &patterns_a);
        let expect = engine_run(&reference, &[b], 30);
        assert_eq!(got.len(), expect.len());
        for (x, y) in got.iter().zip(&expect) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score, y.score, "tf-idf scores must match the oracle");
        }
    }

    #[test]
    fn metrics_report_queue_depths() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 8);
        let t = pipeline.intern("t");
        pipeline.stage_document(streams[0], HashMap::from([(t, 1)]));
        let m = pipeline.metrics();
        assert_eq!(m.staged_docs, 1);
        assert_eq!(m.dirty_terms, 1);
        assert_eq!(m.ticks_committed, 0);
        pipeline.commit_tick();
        let m = pipeline.metrics();
        assert_eq!(m.staged_docs, 0);
        assert_eq!(m.dirty_terms, 0);
        assert_eq!(m.ticks_committed, 1);
        assert_eq!(m.docs_ingested, 1);
        assert_eq!(m.tracked_miners, 1);
        assert!(m.last_commit_ms >= 0.0);
        assert!(m.engine.finalized);
        assert!(m.generation > 0);
    }

    #[test]
    fn concurrent_queries_during_ingest() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 40);
        let t = pipeline.intern("t");
        let handle = pipeline.search_handle();
        let done = AtomicBool::new(false);
        let answered = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let h = handle.clone();
            let done_ref = &done;
            let answered_ref = &answered;
            let reader = scope.spawn(move || {
                while !done_ref.load(Ordering::Relaxed) {
                    let _ = run(&h, &[t], 5);
                    answered_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
            for tick in 0..40 {
                burst_tick(&mut pipeline, &streams, t, (10..20).contains(&tick));
                // The lock-free read path never blocks the writer, so on a
                // single-CPU box the commit loop could finish before the
                // reader is ever scheduled; yield to let it interleave.
                std::thread::yield_now();
            }
            // Liveness: the reader must get at least one answer while the
            // pipeline exists (not merely "was spawned").
            while answered.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
            reader.join().expect("query thread");
            assert!(
                answered.load(Ordering::Relaxed) > 0,
                "queries must be served during ingest"
            );
        });
        assert!(!run(&handle, &[t], 5).is_empty());
    }

    #[test]
    fn attached_obs_records_commits_and_reconciles_with_metrics() {
        use crate::obs::{PipelineObs, PipelineObsConfig};

        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 12);
        let obs = PipelineObs::new(&PipelineObsConfig::default());
        pipeline.attach_obs(&obs);
        let t = pipeline.intern("t");
        let handle = pipeline.search_handle();
        for tick in 0..12 {
            burst_tick(&mut pipeline, &streams, t, (4..7).contains(&tick));
            let _ = run(&handle, &[t], 5);
        }

        let snap = obs.snapshot();
        assert_eq!(snap.counter("ingest_commits_total"), Some(12));
        assert_eq!(
            snap.histogram("ingest_commit_ns").map(|h| h.count()),
            Some(12)
        );
        // Adopted cells reconcile exactly with the legacy metrics view.
        let m = pipeline.metrics();
        assert_eq!(snap.counter("ingest_docs_total"), Some(m.docs_ingested));
        assert_eq!(
            snap.counter("search_queries_total"),
            Some(m.engine.cache_hits + m.engine.cache_misses)
        );
        // Ephemeral pipeline: durability gauge reads 0, no WAL activity.
        assert_eq!(snap.gauge("ingest_durability_state"), Some(0.0));
        assert_eq!(snap.counter("wal_appends_total"), Some(0));

        // Commit traces carry the apply → mine → publish breakdown (no
        // WalAppend span without a store).
        let traces = obs.commit_traces();
        assert!(!traces.is_empty());
        let kinds: Vec<_> = traces[0].spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::ApplyDocs, SpanKind::Mine, SpanKind::Publish]
        );

        // The health report consumes the histogram snapshot.
        let h = pipeline.health();
        assert_eq!(h.uptime_ticks, 12);
        assert!(h.commit_p99_ms.is_some());
        assert!(h.durability_state_secs >= 0.0);

        // The exposition endpoints render the live cells.
        let prom = obs.registry().render_prometheus();
        assert!(prom.contains("ingest_commits_total 12"));
        assert!(prom.contains("ingest_commit_ns{quantile=\"0.99\"}"));
    }

    #[test]
    fn durable_obs_sees_wal_appends_and_durability_gauge() {
        use crate::obs::{PipelineObs, PipelineObsConfig};

        let dir = temp_dir("obs");
        let (mut pipeline, _) =
            IngestPipeline::durable(durable_config(8), &dir).expect("open durable pipeline");
        let obs = PipelineObs::new(&PipelineObsConfig::default());
        pipeline.attach_obs(&obs);
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        for _ in 0..4 {
            commit_one(&mut pipeline, s, t);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("ingest_durability_state"), Some(1.0));
        assert_eq!(snap.counter("ingest_wal_appends_total"), Some(4));
        // The writer-level histogram sees the same four appends.
        assert_eq!(snap.histogram("wal_append_ns").map(|h| h.count()), Some(4));
        // Durable commits lead with the WalAppend span.
        let traces = obs.commit_traces();
        assert!(!traces.is_empty());
        assert_eq!(traces[0].spans[0].kind, SpanKind::WalAppend);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Fresh per-test store directory under the system temp dir.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stb-ingest-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(ticks: usize) -> IngestConfig {
        IngestConfig {
            timeline_capacity: ticks,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            ..Default::default()
        }
    }

    /// Drives `ticks` bursty ticks through a durable pipeline in `dir` and
    /// returns the pipeline plus the interned term.
    fn durable_burst_run(dir: &std::path::Path, ticks: usize) -> (IngestPipeline, TermId) {
        let (mut pipeline, report) =
            IngestPipeline::durable(durable_config(ticks), dir).expect("open durable pipeline");
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_ticks_replayed, 0);
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        let quake = pipeline.intern("quake");
        for tick in 0..ticks {
            burst_tick(&mut pipeline, &streams, quake, (3..6).contains(&tick));
        }
        assert!(
            pipeline.durability_state().is_durable(),
            "WAL append must not fail"
        );
        (pipeline, quake)
    }

    #[test]
    fn durable_pipeline_recovers_from_wal_alone() {
        let dir = temp_dir("wal-only");
        let (pipeline, quake) = durable_burst_run(&dir, 10);
        let expect = pipeline.export_snapshot_state();
        let handle = pipeline.search_handle();
        let expect_top = run(&handle, &[quake], 5);
        assert!(!expect_top.is_empty());
        drop(pipeline);

        let (recovered, report) =
            IngestPipeline::durable(durable_config(10), &dir).expect("recover");
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_ticks_replayed, 10);
        assert_eq!(report.wal_ticks_skipped, 0);
        assert_eq!(report.wal_bytes_discarded, 0);
        assert_eq!(recovered.ticks_committed(), 10);
        let got = recovered.export_snapshot_state();
        assert_eq!(expect.engine, got.engine, "engine state must round-trip");
        assert_eq!(expect.pending, got.pending);
        let got_top = run(&recovered.search_handle(), &[quake], 5);
        assert_eq!(expect_top.len(), got_top.len());
        for (e, g) in expect_top.iter().zip(&got_top) {
            assert_eq!(e.doc, g.doc);
            assert_eq!(e.score.to_bits(), g.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_pipeline_recovers_from_snapshot_plus_wal() {
        let dir = temp_dir("snap-wal");
        let (mut pipeline, quake) = durable_burst_run(&dir, 6);
        pipeline.checkpoint().expect("checkpoint");
        // Four more ticks after the checkpoint land only in the WAL.
        let streams: Vec<StreamId> = (0..3).map(|i| StreamId(i as u32)).collect();
        for tick in 6..10 {
            burst_tick(&mut pipeline, &streams, quake, (3..6).contains(&tick));
        }
        let expect = pipeline.export_snapshot_state();
        let expect_top = run(&pipeline.search_handle(), &[quake], 5);
        drop(pipeline);

        let (recovered, report) =
            IngestPipeline::durable(durable_config(10), &dir).expect("recover");
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_ticks, 6);
        assert_eq!(report.wal_ticks_replayed, 4);
        assert_eq!(recovered.ticks_committed(), 10);
        assert_eq!(expect.engine, recovered.export_snapshot_state().engine);
        let got_top = run(&recovered.search_handle(), &[quake], 5);
        for (e, g) in expect_top.iter().zip(&got_top) {
            assert_eq!(e.doc, g.doc);
            assert_eq!(e.score.to_bits(), g.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_counts() {
        let dir = temp_dir("compact");
        let (mut pipeline, _) = durable_burst_run(&dir, 8);
        let wal_before = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert!(wal_before > stb_store::WAL_HEADER_LEN);
        let bytes = pipeline.checkpoint().expect("checkpoint");
        assert!(bytes > 0);
        let wal_after = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert_eq!(wal_after, stb_store::WAL_HEADER_LEN);
        let m = pipeline.metrics();
        assert!(m.durable);
        assert_eq!(m.checkpoints, 1);
        assert_eq!(m.wal_appends, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_on_configured_cadence() {
        let dir = temp_dir("auto-ckpt");
        let config = IngestConfig {
            timeline_capacity: 9,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            checkpoint_every_ticks: 3,
            ..Default::default()
        };
        let (mut pipeline, _) = IngestPipeline::durable(config, &dir).expect("open");
        let streams = vec![
            pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
            pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
            pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
        ];
        let t = pipeline.intern("t");
        for tick in 0..9 {
            burst_tick(&mut pipeline, &streams, t, tick == 4);
        }
        assert!(pipeline.durability_state().is_durable());
        assert_eq!(pipeline.metrics().checkpoints, 3);
        // The final commit triggered a checkpoint, so the WAL is compact.
        let wal_len = std::fs::metadata(dir.join(stb_store::WAL_FILE))
            .expect("wal exists")
            .len();
        assert_eq!(wal_len, stb_store::WAL_HEADER_LEN);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_non_durable_pipeline_is_typed_error() {
        let (mut pipeline, _) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 4);
        assert!(!pipeline.is_durable());
        match pipeline.checkpoint() {
            Err(StoreError::NotDurable) => {}
            other => panic!("expected NotDurable, got {other:?}"),
        }
    }

    #[test]
    fn durable_pipeline_with_fsync_policy_commits() {
        let dir = temp_dir("fsync");
        let config = IngestConfig {
            timeline_capacity: 3,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            durability: Durability::Fsync,
            ..Default::default()
        };
        let (mut pipeline, _) = IngestPipeline::durable(config, &dir).expect("open");
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        for _ in 0..3 {
            pipeline.stage_document(s, HashMap::from([(t, 2)]));
            pipeline.commit_tick();
        }
        assert!(pipeline.durability_state().is_durable());
        assert_eq!(pipeline.metrics().wal_appends, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    use stb_store::{FaultSchedule, FaultSite, InjectedFault};

    /// A durable pipeline over a fault-schedule store, with zero-backoff
    /// retries so tests run instantly, plus one registered stream/term.
    fn faulted_pipeline(
        tag: &str,
        max_retries: u32,
        max_buffered: usize,
    ) -> (
        IngestPipeline,
        FaultSchedule,
        StreamId,
        TermId,
        std::path::PathBuf,
    ) {
        let dir = temp_dir(tag);
        let faults = FaultSchedule::new();
        let store = Store::open_with_faults(&dir, faults.clone()).expect("open store");
        let config = IngestConfig {
            timeline_capacity: 32,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            retry: RetryPolicy::immediate(max_retries),
            max_buffered_ticks: max_buffered,
            ..Default::default()
        };
        let (mut pipeline, _) =
            IngestPipeline::durable_with_store(config, store).expect("open pipeline");
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        (pipeline, faults, s, t, dir)
    }

    fn commit_one(pipeline: &mut IngestPipeline, s: StreamId, t: TermId) -> TickReceipt {
        pipeline.stage_document(s, HashMap::from([(t, 2)]));
        pipeline.commit_tick()
    }

    #[test]
    fn transient_fault_within_retry_budget_stays_durable() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("retry-ok", 3, 8);
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        let receipt = commit_one(&mut pipeline, s, t);
        assert_eq!(receipt.durability, DurabilityState::Durable);
        let h = pipeline.health();
        assert_eq!(h.store_retries, 1);
        assert_eq!(h.wal_failures, 0);
        assert_eq!(h.wal_appends, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retries_degrade_then_recover_with_all_ticks_logged() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("degrade-recover", 1, 8);
        // Three transient faults: initial attempt + 1 retry exhaust the
        // policy, leaving one queued to also fail the in-commit restore.
        for _ in 0..3 {
            faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        }
        let receipt = commit_one(&mut pipeline, s, t);
        assert!(receipt.durability.is_degraded());
        assert_eq!(pipeline.health().buffered_ticks, 1);

        // Disk heals: the next commit buffers its record, re-opens the
        // log, and replays both.
        faults.heal();
        let receipt = commit_one(&mut pipeline, s, t);
        assert_eq!(receipt.durability, DurabilityState::Durable);
        let h = pipeline.health();
        assert_eq!(h.buffered_ticks, 0);
        assert_eq!(h.recoveries, 1);
        assert!(h.last_error.is_none());
        // Every committed tick is on disk.
        let store = Store::open(&dir).expect("reopen");
        let replay = store.read_wal().expect("read wal");
        assert_eq!(replay.ticks.len(), 2);
        assert_eq!(replay.ticks[0].tick, 0);
        assert_eq!(replay.ticks[1].tick, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_recovery_drains_the_buffer_without_a_commit() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("explicit-recover", 0, 8);
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        let receipt = commit_one(&mut pipeline, s, t);
        assert!(receipt.durability.is_degraded());
        faults.heal();
        let state = pipeline.try_recover_durability();
        assert_eq!(state, DurabilityState::Durable);
        // No extra tick was committed to get there (bit-identity with a
        // never-faulted run depends on this).
        assert_eq!(pipeline.ticks_committed(), 1);
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.read_wal().expect("read wal").ticks.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_failure_after_full_frame_is_not_duplicated_on_recovery() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("sync-fail", 0, 8);
        // The frame is fully written, then the durability step fails: the
        // record is on disk but unacknowledged.
        faults.fail_next_at(FaultSite::WalSync, InjectedFault::transient());
        let receipt = commit_one(&mut pipeline, s, t);
        assert!(receipt.durability.is_degraded());
        faults.heal();
        assert_eq!(pipeline.try_recover_durability(), DurabilityState::Durable);
        let store = Store::open(&dir).expect("reopen");
        let replay = store.read_wal().expect("read wal");
        let ticks: Vec<u64> = replay.ticks.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![0], "the persisted record must not repeat");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_partial_append_is_repaired_on_recovery() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("torn-append", 0, 8);
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::torn(5));
        let receipt = commit_one(&mut pipeline, s, t);
        assert!(receipt.durability.is_degraded());
        faults.heal();
        assert_eq!(pipeline.try_recover_durability(), DurabilityState::Durable);
        let store = Store::open(&dir).expect("reopen");
        let replay = store.read_wal().expect("read wal");
        assert_eq!(replay.ticks.len(), 1);
        assert_eq!(replay.discarded_bytes, 0, "torn bytes were truncated away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_fault_fail_stops_to_non_durable() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("permanent", 3, 8);
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::permanent());
        let receipt = commit_one(&mut pipeline, s, t);
        assert_eq!(receipt.durability, DurabilityState::NonDurable);
        // No retries were wasted on a permanent error.
        assert_eq!(pipeline.health().store_retries, 0);
        // Fail-stop: healing alone does not revive it.
        faults.heal();
        assert_eq!(
            pipeline.try_recover_durability(),
            DurabilityState::NonDurable
        );
        // ...but an explicit successful checkpoint does.
        commit_one(&mut pipeline, s, t);
        pipeline.checkpoint().expect("checkpoint revives");
        assert_eq!(pipeline.durability_state(), DurabilityState::Durable);
        assert!(pipeline.health().last_error.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffer_overflow_fail_stops() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("overflow", 0, 2);
        // Every append and every restore attempt fails (storm of
        // transients far longer than the bound).
        faults.storm(3, 1000, 1000);
        let mut last = DurabilityState::Durable;
        for _ in 0..5 {
            last = commit_one(&mut pipeline, s, t).durability;
        }
        assert_eq!(last, DurabilityState::NonDurable);
        // The buffer was dropped at the cliff edge.
        assert_eq!(pipeline.health().buffered_ticks, 0);
        faults.heal();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn receipt_durability_reports_degradation_per_commit() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("receipt", 0, 8);
        assert_eq!(
            commit_one(&mut pipeline, s, t).durability,
            DurabilityState::Durable
        );
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        faults.fail_next_at(FaultSite::WalRead, InjectedFault::transient());
        let degraded = commit_one(&mut pipeline, s, t);
        match degraded.durability {
            DurabilityState::Degraded {
                consecutive_failures,
                buffered_ticks,
            } => {
                assert!(consecutive_failures >= 1);
                assert_eq!(buffered_ticks, 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_pipeline_reports_ephemeral_health() {
        let (mut pipeline, streams) =
            two_cluster_pipeline(MinerKind::STLocal(STLocalConfig::default()), 4);
        let t = pipeline.intern("t");
        let receipt = burst_tick(&mut pipeline, &streams, t, false);
        assert_eq!(receipt.durability, DurabilityState::Ephemeral);
        assert_eq!(pipeline.health().durability, DurabilityState::Ephemeral);
    }

    #[test]
    fn search_handle_surfaces_health() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("handle-health", 0, 8);
        let handle = pipeline.search_handle();
        assert_eq!(handle.health().durability, DurabilityState::Durable);
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        faults.fail_next_at(FaultSite::WalRead, InjectedFault::transient());
        commit_one(&mut pipeline, s, t);
        let h = handle.health();
        assert!(h.durability.is_degraded());
        assert_eq!(h.buffered_ticks, 1);
        assert!(h.last_error.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wal_error_still_reflects_state() {
        let (mut pipeline, faults, s, t, dir) = faulted_pipeline("compat", 0, 8);
        assert!(pipeline.wal_error().is_none());
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        faults.fail_next_at(FaultSite::WalRead, InjectedFault::transient());
        commit_one(&mut pipeline, s, t);
        assert!(pipeline.wal_error().is_some());
        faults.heal();
        pipeline.try_recover_durability();
        assert!(pipeline.wal_error().is_none(), "cleared on recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_catches_poison_documents() {
        let config = IngestConfig {
            timeline_capacity: 4,
            max_terms_per_doc: 10,
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config);
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");

        let unknown_stream = StreamId(99);
        match pipeline.try_stage_document(unknown_stream, HashMap::from([(t, 1)])) {
            Ok(StageOutcome::Quarantined(QuarantineReason::UnknownStream)) => {}
            other => panic!("expected UnknownStream quarantine, got {other:?}"),
        }
        match pipeline.try_stage_document(s, HashMap::from([(TermId(42), 1)])) {
            Ok(StageOutcome::Quarantined(QuarantineReason::UnknownTerm)) => {}
            other => panic!("expected UnknownTerm quarantine, got {other:?}"),
        }
        match pipeline.try_stage_document(s, HashMap::from([(t, 11)])) {
            Ok(StageOutcome::Quarantined(QuarantineReason::OversizedDoc)) => {}
            other => panic!("expected OversizedDoc quarantine, got {other:?}"),
        }
        // The tick survives: a clean document commits normally.
        match pipeline.try_stage_document(s, HashMap::from([(t, 1)])) {
            Ok(StageOutcome::Staged) => {}
            other => panic!("expected Staged, got {other:?}"),
        }
        let receipt = pipeline.commit_tick();
        assert_eq!(receipt.new_docs.len(), 1);
        let h = pipeline.health();
        assert_eq!(h.quarantined, 3);
        assert_eq!(h.quarantined_total, 3);
        let reasons: Vec<QuarantineReason> = pipeline.quarantine_log().map(|q| q.reason).collect();
        assert_eq!(
            reasons,
            vec![
                QuarantineReason::UnknownStream,
                QuarantineReason::UnknownTerm,
                QuarantineReason::OversizedDoc
            ]
        );
    }

    #[test]
    fn quarantine_log_is_bounded_but_total_keeps_counting() {
        let config = IngestConfig {
            timeline_capacity: 4,
            max_quarantined_docs: 2,
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config);
        let _ = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        for _ in 0..5 {
            let _ = pipeline.try_stage_document(StreamId(9), HashMap::from([(t, 1)]));
        }
        let h = pipeline.health();
        assert_eq!(h.quarantined, 2);
        assert_eq!(h.quarantined_total, 5);
    }

    #[test]
    fn backpressure_block_commits_inline() {
        let config = IngestConfig {
            timeline_capacity: 8,
            max_staged_docs: 2,
            backpressure: Backpressure::Block,
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config);
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        for _ in 0..2 {
            match pipeline.try_stage_document(s, HashMap::from([(t, 1)])) {
                Ok(StageOutcome::Staged) => {}
                other => panic!("expected Staged, got {other:?}"),
            }
        }
        match pipeline.try_stage_document(s, HashMap::from([(t, 1)])) {
            Ok(StageOutcome::StagedAfterCommit(receipt)) => {
                assert_eq!(receipt.tick, 0);
                assert_eq!(receipt.new_docs.len(), 2);
            }
            other => panic!("expected StagedAfterCommit, got {other:?}"),
        }
        assert_eq!(pipeline.ticks_committed(), 1);
        assert_eq!(pipeline.health().staged_docs, 1);
    }

    #[test]
    fn backpressure_shed_drops_and_counts() {
        let config = IngestConfig {
            timeline_capacity: 8,
            max_staged_docs: 1,
            backpressure: Backpressure::Shed,
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config);
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        let _ = pipeline.try_stage_document(s, HashMap::from([(t, 1)]));
        match pipeline.try_stage_document(s, HashMap::from([(t, 1)])) {
            Ok(StageOutcome::Shed) => {}
            other => panic!("expected Shed, got {other:?}"),
        }
        let receipt = pipeline.commit_tick();
        assert_eq!(receipt.new_docs.len(), 1, "shed doc never entered");
        assert_eq!(pipeline.health().docs_shed, 1);
    }

    #[test]
    fn backpressure_error_is_typed() {
        let config = IngestConfig {
            timeline_capacity: 8,
            max_staged_docs: 1,
            backpressure: Backpressure::Error,
            ..Default::default()
        };
        let mut pipeline = IngestPipeline::new(config);
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        let _ = pipeline.try_stage_document(s, HashMap::from([(t, 1)]));
        match pipeline.try_stage_document(s, HashMap::from([(t, 1)])) {
            Err(IngestError::StagingFull { staged: 1, max: 1 }) => {}
            other => panic!("expected StagingFull, got {other:?}"),
        }
        // Committing drains the buffer and staging resumes.
        pipeline.commit_tick();
        assert!(matches!(
            pipeline.try_stage_document(s, HashMap::from([(t, 1)])),
            Ok(StageOutcome::Staged)
        ));
    }

    #[test]
    fn auto_checkpoint_failure_keeps_durability_and_retries_later() {
        let dir = temp_dir("auto-ckpt-fault");
        let faults = FaultSchedule::new();
        let store = Store::open_with_faults(&dir, faults.clone()).expect("open store");
        let config = IngestConfig {
            timeline_capacity: 8,
            miner: MinerKind::STLocal(STLocalConfig::default()),
            checkpoint_every_ticks: 2,
            retry: RetryPolicy::immediate(0),
            ..Default::default()
        };
        let (mut pipeline, _) =
            IngestPipeline::durable_with_store(config, store).expect("open pipeline");
        let s = pipeline.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = pipeline.intern("t");
        commit_one(&mut pipeline, s, t);
        // The 2nd commit triggers the auto-checkpoint; fail its snapshot
        // write. The WAL still holds every tick: durability is intact.
        faults.fail_next_at(FaultSite::SnapshotWrite, InjectedFault::transient());
        let receipt = commit_one(&mut pipeline, s, t);
        assert_eq!(receipt.durability, DurabilityState::Durable);
        let h = pipeline.health();
        assert_eq!(h.checkpoint_failures, 1);
        assert_eq!(h.checkpoints, 0);
        // The next commit retries the (now healed) checkpoint.
        commit_one(&mut pipeline, s, t);
        assert_eq!(pipeline.health().checkpoints, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
