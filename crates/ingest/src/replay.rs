//! Tick-by-tick replay of a TSV corpus into an [`IngestPipeline`].
//!
//! The batch TSV loader (`stb_corpus::tsv::read_collection`) materializes a
//! whole file into a [`stb_corpus::Collection`]; this module instead drives
//! the file through the live pipeline one tick at a time using the
//! streaming reader ([`stb_corpus::tsv::TsvStreamReader`]): streams come
//! online as their `S` records appear, documents are staged against their
//! timestamp's tick, and every tick of the declared timeline is committed —
//! including trailing empty ones, so the streaming miners observe the full
//! timeline exactly as a batch mining run would.
//!
//! Replay requires documents in non-decreasing timestamp order (the order
//! the TSV writer produces for any corpus that was itself built in arrival
//! order). A timestamp regression is reported as
//! [`ReplayError::OutOfOrder`] rather than silently reordering the stream.

use crate::pipeline::{IngestConfig, IngestPipeline, RecoveryReport};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use stb_corpus::tsv::{TsvError, TsvRecord, TsvStreamReader};
use stb_corpus::StreamId;
use stb_store::StoreError;

/// Errors produced while replaying a TSV corpus into a pipeline.
#[derive(Debug)]
pub enum ReplayError {
    /// The underlying stream could not be read or parsed.
    Tsv(TsvError),
    /// The durable store could not be opened, recovered, or written
    /// (durable replay only).
    Store(StoreError),
    /// A document's timestamp precedes an already-committed tick.
    OutOfOrder {
        /// 1-based line number of the offending record.
        line: usize,
        /// The document's timestamp.
        timestamp: usize,
        /// The first tick that is still open.
        open_tick: usize,
    },
    /// A document references a stream id with no preceding `S` record.
    UnknownStream {
        /// 1-based line number of the offending record.
        line: usize,
        /// The unresolved external stream id.
        stream: u32,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Tsv(e) => write!(f, "tsv error: {e}"),
            ReplayError::Store(e) => write!(f, "store error: {e}"),
            ReplayError::OutOfOrder {
                line,
                timestamp,
                open_tick,
            } => write!(
                f,
                "line {line}: document at timestamp {timestamp} arrived after tick \
                 {open_tick} opened (replay needs non-decreasing timestamps)"
            ),
            ReplayError::UnknownStream { line, stream } => {
                write!(
                    f,
                    "line {line}: document references unknown stream {stream}"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TsvError> for ReplayError {
    fn from(e: TsvError) -> Self {
        ReplayError::Tsv(e)
    }
}

impl From<StoreError> for ReplayError {
    fn from(e: StoreError) -> Self {
        ReplayError::Store(e)
    }
}

/// Replays a TSV corpus through a fresh [`IngestPipeline`], committing one
/// tick per timestamp of the declared timeline, and returns the pipeline
/// ready for further ingestion and querying.
///
/// `config.timeline_capacity` is raised to the file's declared timeline
/// length, so the replay itself never grows the timeline (which would
/// re-dirty every term for the `STComb` view; see the pipeline docs).
///
/// ```
/// use stb_ingest::{replay_tsv, IngestConfig, Query};
/// use std::io::Cursor;
///
/// let data = "C\t4\n\
///             S\t0\tAthens\t38.0\t23.7\t23.7\t38.0\n\
///             S\t1\tLima\t-12.0\t-77.0\t-77.0\t-12.0\n\
///             D\t0\t1\tquake:9\n\
///             D\t1\t1\tquake:1\n\
///             D\t0\t2\tquake:8\n";
/// let pipeline = replay_tsv(Cursor::new(data), IngestConfig::default()).unwrap();
/// assert_eq!(pipeline.ticks_committed(), 4); // the whole declared timeline
/// let handle = pipeline.search_handle();
/// let collection = handle.collection();
/// assert_eq!(collection.documents().len(), 3);
/// let hits = handle.query(&Query::text("quake").top_k(2)).unwrap();
/// assert!(!hits.results.is_empty());
/// ```
pub fn replay_tsv<R: BufRead>(
    input: R,
    mut config: IngestConfig,
) -> Result<IngestPipeline, ReplayError> {
    let mut reader = TsvStreamReader::new(input)?;
    config.timeline_capacity = config.timeline_capacity.max(reader.timeline_len());
    let mut pipeline = IngestPipeline::new(config);
    drive_replay(&mut reader, &mut pipeline)?;
    Ok(pipeline)
}

/// Replays a TSV corpus through a *durable* pipeline rooted at `dir` — or
/// skips the file entirely if the store already holds committed state.
///
/// On a directory whose recovered pipeline is truly empty (no committed
/// ticks, no streams or terms, nothing staged — a fresh directory, or a
/// checkpoint of a pristine pipeline) this behaves like [`replay_tsv`]
/// with every tick write-ahead logged, followed by a final
/// [`IngestPipeline::checkpoint`] so the next start recovers from the
/// snapshot alone, and the returned report has
/// [`RecoveryReport::corpus_ingested`] set. On a directory holding any
/// recovered state (a restart), the state recovers as `load_snapshot +
/// replay_wal` and the TSV input is **not** re-read — this is the fast
/// cold-start path the store exists for — with `corpus_ingested` left
/// `false` so callers can detect the skip. Callers resuming a partially
/// ingested corpus should compare [`IngestPipeline::ticks_committed`]
/// against the file's timeline and feed the remainder through the staging
/// API.
pub fn replay_tsv_durable<R: BufRead>(
    input: R,
    mut config: IngestConfig,
    dir: impl AsRef<Path>,
) -> Result<(IngestPipeline, RecoveryReport), ReplayError> {
    let mut reader = TsvStreamReader::new(input)?;
    config.timeline_capacity = config.timeline_capacity.max(reader.timeline_len());
    let (mut pipeline, mut report) = IngestPipeline::durable(config, dir)?;
    let empty = pipeline.ticks_committed() == 0 && pipeline.metrics().staged_docs == 0 && {
        let collection = pipeline.collection();
        collection.n_streams() == 0 && collection.n_terms() == 0
    };
    if empty {
        drive_replay(&mut reader, &mut pipeline)?;
        pipeline.checkpoint()?;
        report.corpus_ingested = true;
    }
    Ok((pipeline, report))
}

/// Drives every record of `reader` through `pipeline`, committing through
/// the file's declared timeline.
fn drive_replay<R: BufRead>(
    reader: &mut TsvStreamReader<R>,
    pipeline: &mut IngestPipeline,
) -> Result<(), ReplayError> {
    let mut stream_map: HashMap<u32, StreamId> = HashMap::new();

    while let Some(record) = reader.next() {
        let line = reader.line();
        match record? {
            TsvRecord::Stream {
                ext_id,
                name,
                geostamp,
                position,
            } => {
                let id = pipeline.add_stream_with_position(&name, geostamp, position);
                stream_map.insert(ext_id, id);
            }
            TsvRecord::Document(doc) => {
                if doc.timestamp < pipeline.ticks_committed() {
                    return Err(ReplayError::OutOfOrder {
                        line,
                        timestamp: doc.timestamp,
                        open_tick: pipeline.ticks_committed(),
                    });
                }
                while pipeline.ticks_committed() < doc.timestamp {
                    pipeline.commit_tick();
                }
                let stream = *stream_map
                    .get(&doc.stream)
                    .ok_or(ReplayError::UnknownStream {
                        line,
                        stream: doc.stream,
                    })?;
                let mut counts = HashMap::new();
                for (term, count) in doc.counts {
                    let id = pipeline.intern(&term);
                    *counts.entry(id).or_insert(0) += count;
                }
                pipeline.stage_document(stream, counts);
            }
        }
    }

    // Commit through the *file's* declared timeline (the last staged tick
    // and any trailing empty ticks): batch mining observes every timestamp,
    // so the streaming replay must too. Deliberately not the pipeline's
    // timeline length — a caller-provided capacity larger than the file is
    // headroom for ingestion after the replay, not ticks to commit.
    while pipeline.ticks_committed() < reader.timeline_len() {
        pipeline.commit_tick();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "C\t5\n\
                          S\t0\tA\t0\t0\t0\t0\n\
                          S\t1\tB\t1\t1\t1\t1\n\
                          D\t0\t0\tx:2\ty:1\n\
                          D\t1\t1\tx:4\n\
                          D\t0\t3\tz:5\n";

    #[test]
    fn replay_commits_the_whole_timeline() {
        let pipeline = replay_tsv(Cursor::new(SAMPLE), IngestConfig::default()).unwrap();
        assert_eq!(pipeline.ticks_committed(), 5);
        assert_eq!(pipeline.timeline_len(), 5);
        let collection = pipeline.collection();
        assert_eq!(collection.documents().len(), 3);
        assert_eq!(collection.n_streams(), 2);
    }

    #[test]
    fn replay_matches_the_batch_loader() {
        let batch = stb_corpus::tsv::read_collection(Cursor::new(SAMPLE)).unwrap();
        let pipeline = replay_tsv(Cursor::new(SAMPLE), IngestConfig::default()).unwrap();
        let live = pipeline.collection();

        assert_eq!(batch.n_streams(), live.n_streams());
        assert_eq!(batch.timeline_len(), live.timeline_len());
        assert_eq!(batch.documents().len(), live.documents().len());
        assert_eq!(batch.n_terms(), live.n_terms());
        // Same file order on both paths: even the interned ids agree.
        for (term, name) in batch.dict().iter() {
            assert_eq!(live.dict().get(name), Some(term), "term id for {name:?}");
            assert_eq!(
                batch.term_merged_series(term),
                live.term_merged_series(term)
            );
            for s in 0..batch.n_streams() {
                assert_eq!(
                    batch.term_stream_series(term, StreamId(s as u32)),
                    live.term_stream_series(term, StreamId(s as u32))
                );
            }
        }
        for s in 0..batch.n_streams() {
            assert_eq!(
                batch.stream_total_series(StreamId(s as u32)),
                live.stream_total_series(StreamId(s as u32))
            );
        }
    }

    #[test]
    fn replay_accepts_streams_coming_online_mid_file() {
        let data = "C\t3\n\
                    S\t0\tA\t0\t0\t0\t0\n\
                    D\t0\t0\tx:1\n\
                    S\t1\tB\t1\t1\t1\t1\n\
                    D\t1\t2\tx:3\n";
        let pipeline = replay_tsv(Cursor::new(data), IngestConfig::default()).unwrap();
        let collection = pipeline.collection();
        assert_eq!(collection.n_streams(), 2);
        assert_eq!(collection.documents().len(), 2);
    }

    #[test]
    fn replay_rejects_out_of_order_timestamps() {
        let data = "C\t3\nS\t0\tA\t0\t0\t0\t0\nD\t0\t2\tx:1\nD\t0\t0\tx:1\n";
        let err = replay_tsv(Cursor::new(data), IngestConfig::default())
            .err()
            .expect("out-of-order replay must fail");
        match err {
            ReplayError::OutOfOrder {
                timestamp, line, ..
            } => {
                assert_eq!(timestamp, 0);
                assert_eq!(line, 4);
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn oversized_capacity_is_headroom_not_ticks() {
        // A capacity larger than the file pre-sizes the timeline for later
        // ingestion; replay must still only commit the file's timeline.
        let config = IngestConfig {
            timeline_capacity: 40,
            ..Default::default()
        };
        let pipeline = replay_tsv(Cursor::new(SAMPLE), config).unwrap();
        assert_eq!(pipeline.ticks_committed(), 5);
        assert_eq!(pipeline.timeline_len(), 40);
    }

    #[test]
    fn replay_rejects_unknown_streams() {
        let data = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t7\t0\tx:1\n";
        assert!(matches!(
            replay_tsv(Cursor::new(data), IngestConfig::default()),
            Err(ReplayError::UnknownStream { stream: 7, .. })
        ));
    }

    #[test]
    fn replay_propagates_parse_errors() {
        let data = "C\t2\nS\t0\tA\t0\t0\t0\t0\nD\t0\t0\tbroken\n";
        assert!(matches!(
            replay_tsv(Cursor::new(data), IngestConfig::default()),
            Err(ReplayError::Tsv(_))
        ));
    }
}
