//! A mutable, snapshot-publishing view over a [`Collection`].
//!
//! [`LiveCollection`] is the ownership half of the live-ingestion design:
//! it holds the authoritative, mutable collection behind an
//! `Arc<Collection>` and mutates it copy-on-write (`Arc::make_mut`). While
//! no snapshot is shared, mutations are in-place and cheap; once a snapshot
//! has been published (to a search engine serving queries on another
//! thread), the *first* mutation of the next generation clones the
//! collection and every later mutation of that generation is again
//! in-place. Readers therefore always see a fully consistent generation —
//! never a half-applied tick — and writers never block on readers.

use std::collections::HashMap;
use std::sync::Arc;

use stb_corpus::{Collection, CollectionBuilder, DocId, StreamId, TermDict, TermId, Timestamp};
use stb_geo::{GeoPoint, Point2D};

/// A collection that keeps accepting streams, ticks, documents, and
/// previously-unseen terms after construction, publishing immutable
/// generational snapshots.
///
/// ```
/// use stb_ingest::LiveCollection;
/// use stb_geo::GeoPoint;
/// use std::collections::HashMap;
///
/// let mut live = LiveCollection::new(4);
/// let athens = live.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let quake = live.intern("earthquake");
///
/// let frozen = live.snapshot(); // published: next mutation copies on write
/// live.push_document(athens, 0, HashMap::from([(quake, 3)]));
///
/// // The published snapshot still sees the pre-mutation generation.
/// assert_eq!(frozen.documents().len(), 0);
/// assert_eq!(live.snapshot().documents().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LiveCollection {
    snapshot: Arc<Collection>,
    generation: u64,
}

impl LiveCollection {
    /// Creates an empty live collection whose timeline is pre-sized to
    /// `timeline_capacity` timestamps (0 is fine: the timeline grows on
    /// demand, see [`LiveCollection::extend_timeline`]).
    ///
    /// Pre-sizing matters to incremental `STComb` mining: the temporal
    /// burstiness `B_T` of every interval depends on the timeline length,
    /// so a growing timeline re-dirties every term, while a pre-sized one
    /// keeps per-tick work proportional to the tick's dirty terms.
    pub fn new(timeline_capacity: usize) -> Self {
        Self {
            snapshot: Arc::new(CollectionBuilder::new(timeline_capacity).build()),
            generation: 0,
        }
    }

    /// Wraps an existing collection (e.g. a batch-built corpus to keep
    /// ingesting into).
    pub fn from_collection(collection: impl Into<Arc<Collection>>) -> Self {
        Self {
            snapshot: collection.into(),
            generation: 0,
        }
    }

    /// The current snapshot handle. Cheap (`Arc` clone); the returned
    /// snapshot is immutable and detached from future mutations.
    pub fn snapshot(&self) -> Arc<Collection> {
        Arc::clone(&self.snapshot)
    }

    /// Number of mutations applied so far (the "generation" of the data).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read access to the underlying collection without publishing.
    pub fn collection(&self) -> &Collection {
        &self.snapshot
    }

    fn make_mut(&mut self) -> &mut Collection {
        self.generation += 1;
        Arc::make_mut(&mut self.snapshot)
    }

    /// Interns a term (new or existing) into the live dictionary.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(id) = self.snapshot.dict().get(term) {
            return id; // avoid a copy-on-write clone for known terms
        }
        self.make_mut().dict_mut().intern(term)
    }

    /// Read access to the live dictionary.
    pub fn dict(&self) -> &TermDict {
        self.snapshot.dict()
    }

    /// Tokenizes raw text against the live dictionary, interning any new
    /// terms, and returns the term-count bag (ready for
    /// [`LiveCollection::push_document`]).
    ///
    /// Like [`LiveCollection::intern`], this only mutates (and therefore
    /// only copies a shared snapshot) when the text actually contains a
    /// token the dictionary has not seen yet.
    pub fn term_counts(
        &mut self,
        text: &str,
        tokenizer: &stb_corpus::Tokenizer,
    ) -> HashMap<TermId, u32> {
        let all_known = tokenizer
            .tokenize(text)
            .all(|token| self.snapshot.dict().get(&token).is_some());
        if all_known {
            let dict = self.snapshot.dict();
            let mut counts = HashMap::new();
            for token in tokenizer.tokenize(text) {
                // `all_known` verified every token is present.
                if let Some(id) = dict.get(&token) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            return counts;
        }
        tokenizer.term_counts(text, self.make_mut().dict_mut())
    }

    /// Registers a new stream (position derived from the geostamp).
    pub fn add_stream(&mut self, name: &str, geostamp: GeoPoint) -> StreamId {
        self.make_mut().add_stream(name, geostamp)
    }

    /// Registers a new stream with an explicit planar position.
    pub fn add_stream_with_position(
        &mut self,
        name: &str,
        geostamp: GeoPoint,
        position: Point2D,
    ) -> StreamId {
        self.make_mut()
            .add_stream_with_position(name, geostamp, position)
    }

    /// Grows the timeline to at least `new_len` timestamps.
    pub fn extend_timeline(&mut self, new_len: usize) {
        if new_len > self.snapshot.timeline_len() {
            self.make_mut().extend_timeline(new_len);
        }
    }

    /// Appends a document, incrementally maintaining the frequency tensors.
    ///
    /// # Panics
    ///
    /// Panics if the stream is unknown or the timestamp is beyond the
    /// timeline.
    pub fn push_document(
        &mut self,
        stream: StreamId,
        timestamp: Timestamp,
        counts: HashMap<TermId, u32>,
    ) -> DocId {
        self.make_mut().push_document(stream, timestamp, counts)
    }

    /// Length of the timeline.
    pub fn timeline_len(&self) -> usize {
        self.snapshot.timeline_len()
    }

    /// Number of registered streams.
    pub fn n_streams(&self) -> usize {
        self.snapshot.n_streams()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_generational() {
        let mut live = LiveCollection::new(3);
        let s = live.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = live.intern("x");
        let g0 = live.snapshot();
        let gen0 = live.generation();

        live.push_document(s, 0, HashMap::from([(t, 2)]));
        let g1 = live.snapshot();
        assert_eq!(g0.documents().len(), 0);
        assert_eq!(g1.documents().len(), 1);
        assert!(live.generation() > gen0);

        // Without shared snapshots the mutation is in place: the handle we
        // hold is the same allocation the live side keeps.
        drop((g0, g1));
        let before = Arc::as_ptr(&live.snapshot());
        // (the snapshot we just took is dropped immediately, so refcount
        // returns to 1 and the next mutation must not clone)
        live.push_document(s, 1, HashMap::from([(t, 1)]));
        assert_eq!(Arc::as_ptr(&live.snapshot()), before);
    }

    #[test]
    fn interning_known_terms_does_not_clone() {
        let mut live = LiveCollection::new(1);
        let a = live.intern("alpha");
        let published = live.snapshot();
        let gen = live.generation();
        assert_eq!(live.intern("alpha"), a);
        assert_eq!(live.generation(), gen, "known term must not mutate");
        drop(published);
        let b = live.intern("beta");
        assert_ne!(a, b);
    }

    #[test]
    fn term_counts_with_known_tokens_does_not_mutate() {
        let tokenizer = stb_corpus::Tokenizer::new();
        let mut live = LiveCollection::new(2);
        let quake = live.intern("quake");
        let damage = live.intern("damage");
        let published = live.snapshot();
        let gen = live.generation();

        let counts = live.term_counts("Quake quake damage!", &tokenizer);
        assert_eq!(counts, HashMap::from([(quake, 2), (damage, 1)]));
        assert_eq!(live.generation(), gen, "known-token text must not mutate");

        // An unknown token interns (and may copy the shared snapshot).
        let counts = live.term_counts("quake tsunami", &tokenizer);
        assert!(live.generation() > gen);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[&quake], 1);
        drop(published);
    }

    #[test]
    fn from_collection_keeps_existing_data() {
        let mut b = CollectionBuilder::new(2);
        let s = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let t = b.dict_mut().intern("x");
        b.add_document(s, 0, HashMap::from([(t, 1)]));
        let mut live = LiveCollection::from_collection(b.build());
        assert_eq!(live.snapshot().documents().len(), 1);
        live.push_document(s, 1, HashMap::from([(t, 4)]));
        assert_eq!(live.snapshot().documents().len(), 2);
        assert_eq!(live.collection().term_merged_series(t), vec![1.0, 4.0]);
    }

    #[test]
    fn timeline_grows_on_demand() {
        let mut live = LiveCollection::new(0);
        assert_eq!(live.timeline_len(), 0);
        live.extend_timeline(5);
        assert_eq!(live.timeline_len(), 5);
        live.extend_timeline(2); // no-op, never shrinks
        assert_eq!(live.timeline_len(), 5);
    }
}
