//! Crash-matrix property tests: recovery after *any* crash point must be
//! byte-identical to an engine that never crashed.
//!
//! The harness never instruments the live pipeline. Instead it runs a
//! **clean** durable pipeline to completion, captures the on-disk WAL and
//! snapshot bytes, and then synthesizes the exact artifact a crash at a
//! random offset would have left (via `stb_store::fault`): torn writes,
//! short writes, partial snapshot temp files, and the
//! rename-before-log-truncate window. Recovery from the damaged directory
//! must then agree **bit-for-bit** (`f64::to_bits`, full snapshot
//! encoding) with a reference pipeline that committed the same prefix of
//! ticks and never touched disk — and keep agreeing after the recovered
//! pipeline resumes committing the rest of the plan.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use stb_core::{STCombConfig, STLocalConfig};
use stb_corpus::{StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind, SearchHandle};
use stb_search::{Query, SearchResult};
use stb_store::snapshot::encode_snapshot;
use stb_store::{crash_artifact, truncate_bytes, FaultKind, Store, SNAPSHOT_FILE, WAL_FILE};

const N_STREAMS: usize = 3;
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One tick's documents: (stream index, [(term index, count)]).
type TickSpec = Vec<(usize, Vec<(usize, u32)>)>;

/// A corpus plan: one `TickSpec` per timestamp, with counts skewed so
/// bursts (and therefore non-trivial patterns) actually occur.
fn arb_plan() -> impl Strategy<Value = Vec<TickSpec>> {
    let count = (proptest::bool::ANY, 0u32..25)
        .prop_map(|(burst, c)| if burst { 15 + c } else { 1 + c % 2 });
    let doc = (
        0..N_STREAMS,
        prop::collection::vec((0..TERMS.len(), count), 1..3),
    );
    let tick = prop::collection::vec(doc, 0..4);
    prop::collection::vec(tick, 2..9)
}

fn stream_geo(s: usize) -> GeoPoint {
    match s {
        0 => GeoPoint::new(0.0, 0.0),
        1 => GeoPoint::new(1.0, 1.0),
        _ => GeoPoint::new(40.0 + s as f64, 40.0),
    }
}

fn config(ticks: usize, local: bool, cache_capacity: usize) -> IngestConfig {
    IngestConfig {
        timeline_capacity: ticks,
        miner: if local {
            MinerKind::STLocal(STLocalConfig::default())
        } else {
            MinerKind::STComb(STCombConfig::default())
        },
        cache_capacity,
        ..IngestConfig::default()
    }
}

/// A fresh, empty store directory unique to this test case.
fn case_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "stb-recovery-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup_streams(pipeline: &mut IngestPipeline) {
    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
}

/// Stages a slice of one tick's documents without committing (terms
/// interned in plan order, as `commit_plan` would).
fn stage_docs(pipeline: &mut IngestPipeline, docs: &[(usize, Vec<(usize, u32)>)]) {
    for (stream, bag) in docs {
        let mut counts = HashMap::new();
        for &(term, count) in bag {
            let id = pipeline.intern(TERMS[term]);
            *counts.entry(id).or_insert(0) += count;
        }
        pipeline.stage_document(StreamId(*stream as u32), counts);
    }
}

/// Stages and commits `plan` (streams and terms interned in plan order).
fn commit_plan(pipeline: &mut IngestPipeline, plan: &[TickSpec]) {
    for tick in plan {
        stage_docs(pipeline, tick);
        pipeline.commit_tick();
    }
}

/// A never-durable reference pipeline committing `plan` with an explicit
/// timeline capacity (the capacity must match the durable run's, even when
/// only a prefix of the plan is committed — the tensor's timeline length
/// is part of the byte-identical comparison).
fn reference(
    capacity: usize,
    plan: &[TickSpec],
    local: bool,
    cache_capacity: usize,
) -> IngestPipeline {
    let mut p = IngestPipeline::new(config(capacity, local, cache_capacity));
    setup_streams(&mut p);
    commit_plan(&mut p, plan);
    p
}

/// Runs a clean durable pipeline over the full plan and returns the store
/// directory (pipeline dropped, nothing checkpointed unless asked).
fn clean_durable_run(
    plan: &[TickSpec],
    local: bool,
    cache_capacity: usize,
    checkpoint_after: Option<usize>,
) -> PathBuf {
    let dir = case_dir();
    let (mut p, _) =
        IngestPipeline::durable(config(plan.len(), local, cache_capacity), &dir).expect("open");
    setup_streams(&mut p);
    if let Some(c) = checkpoint_after {
        commit_plan(&mut p, &plan[..c]);
        p.checkpoint().expect("checkpoint");
        commit_plan(&mut p, &plan[c..]);
    } else {
        commit_plan(&mut p, plan);
    }
    assert!(
        p.durability_state().is_durable(),
        "clean run must stay durable"
    );
    dir
}

fn handle_run(handle: &SearchHandle, terms: &[TermId], k: usize) -> Vec<SearchResult> {
    handle
        .query(&Query::terms(terms.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
}

/// Bit-for-bit equivalence: the full snapshot encoding (collection tensor,
/// patterns, postings, pending bookkeeping) plus top-k query results.
fn assert_equiv(
    label: &str,
    expect: &IngestPipeline,
    got: &IngestPipeline,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        expect.ticks_committed(),
        got.ticks_committed(),
        "{}: ticks",
        label
    );
    let state_e = expect.export_snapshot_state();
    let state_g = got.export_snapshot_state();
    prop_assert_eq!(&state_e.pending, &state_g.pending, "{}: pending", label);
    prop_assert_eq!(&state_e.engine, &state_g.engine, "{}: engine", label);
    let mut ce = stb_store::Enc::new();
    stb_store::snapshot::encode_collection(&mut ce, &state_e.collection);
    let mut cg = stb_store::Enc::new();
    stb_store::snapshot::encode_collection(&mut cg, &state_g.collection);
    prop_assert_eq!(ce.into_bytes(), cg.into_bytes(), "{}: collection", label);
    let se = encode_snapshot(&state_e);
    let sg = encode_snapshot(&state_g);
    prop_assert_eq!(se, sg, "{}: snapshot encodings differ", label);
    let terms: Vec<TermId> = expect.collection().terms().collect();
    let mut queries: Vec<Vec<TermId>> = terms.iter().map(|&t| vec![t]).collect();
    if terms.len() >= 2 {
        queries.push(terms.clone());
    }
    let he = expect.search_handle();
    let hg = got.search_handle();
    for query in &queries {
        for k in [1, 3, 10] {
            let re = handle_run(&he, query, k);
            let rg = handle_run(&hg, query, k);
            prop_assert_eq!(re.len(), rg.len(), "{}: result count", label);
            for (e, g) in re.iter().zip(&rg) {
                prop_assert_eq!(e.doc, g.doc, "{}: doc", label);
                prop_assert_eq!(
                    e.score.to_bits(),
                    g.score.to_bits(),
                    "{}: score {} vs {}",
                    label,
                    e.score,
                    g.score
                );
            }
        }
    }
    Ok(())
}

/// Recovers from `dir`, checks the recovered prefix against a fresh
/// reference, then resumes committing the rest of the plan and checks
/// again against the full-plan reference.
fn recover_and_check(
    dir: &Path,
    plan: &[TickSpec],
    local: bool,
    cache_capacity: usize,
) -> Result<(), TestCaseError> {
    let (mut recovered, _report) =
        IngestPipeline::durable(config(plan.len(), local, cache_capacity), dir)
            .expect("recovery must repair the tail, not fail");
    let k = recovered.ticks_committed();
    prop_assert!(k <= plan.len(), "recovered more ticks than committed");
    // Streams ride in tick 0's WAL record, so a recovery that salvaged no
    // ticks is a truly empty pipeline — the reference must be too.
    let mut prefix_ref = IngestPipeline::new(config(plan.len(), local, cache_capacity));
    if k > 0 {
        setup_streams(&mut prefix_ref);
        commit_plan(&mut prefix_ref, &plan[..k]);
    }
    assert_equiv("recovered prefix", &prefix_ref, &recovered)?;

    // Resume: the recovered pipeline must keep agreeing with a pipeline
    // that never crashed, through the end of the plan.
    if recovered.collection().n_streams() == 0 {
        setup_streams(&mut recovered);
    }
    commit_plan(&mut recovered, &plan[k..]);
    prop_assert!(
        recovered.durability_state().is_durable(),
        "resume must stay durable"
    );
    let full_ref = reference(plan.len(), plan, local, cache_capacity);
    assert_equiv("resumed run", &full_ref, &recovered)?;
    let _ = std::fs::remove_dir_all(dir);
    Ok(())
}

proptest! {
    /// Crash during a WAL append: the log is cut (short write) or mangled
    /// (torn write) at an arbitrary offset past the header. Recovery keeps
    /// the longest valid record prefix and resumes from there.
    #[test]
    fn crash_during_wal_append(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        cache in proptest::bool::ANY,
        torn in proptest::bool::ANY,
        cut in 0u64..1_000_000,
        chunk in 1usize..64,
    ) {
        let cache_capacity = if cache { 64 } else { 0 };
        let dir = clean_durable_run(&plan, local, cache_capacity, None);
        let wal_path = dir.join(WAL_FILE);
        let clean = std::fs::read(&wal_path).expect("clean WAL");
        // The header is written and synced at WAL creation; append crashes
        // only ever damage bytes after it.
        let header = stb_store::WAL_HEADER_LEN;
        let crash_at = header + cut % (clean.len() as u64 - header + 1);
        let kind = if torn { FaultKind::Torn } else { FaultKind::ShortWrite };
        std::fs::write(&wal_path, crash_artifact(&clean, kind, crash_at, chunk))
            .expect("write artifact");
        recover_and_check(&dir, &plan, local, cache_capacity)?;
    }

    /// Crash while writing a snapshot: the temp file holds a prefix of the
    /// new snapshot, the rename never happened. Recovery must ignore the
    /// temp file entirely and rebuild from the old snapshot + WAL.
    #[test]
    fn crash_during_snapshot_write(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        frac in 0.0f64..1.0,
        checkpoint_frac in 0.0f64..1.0,
    ) {
        let checkpoint_after = (checkpoint_frac * plan.len() as f64) as usize;
        let dir = clean_durable_run(&plan, local, 0, Some(checkpoint_after));
        // Synthesize a torn snapshot *temp* file from the real snapshot
        // bytes: a later checkpoint crashed mid-write.
        let clean_snap = std::fs::read(dir.join(SNAPSHOT_FILE)).expect("snapshot");
        let cut = (frac * clean_snap.len() as f64) as usize;
        let tmp = dir.join(SNAPSHOT_FILE).with_extension("stb.tmp");
        std::fs::write(&tmp, truncate_bytes(clean_snap, cut)).expect("write tmp");
        recover_and_check(&dir, &plan, local, 0)?;
    }

    /// Crash in the window between the snapshot rename and the WAL
    /// truncation: the new snapshot is durable but the log still holds
    /// every tick it covers. Recovery must skip the already-snapshotted
    /// records instead of double-applying them.
    #[test]
    fn crash_between_rename_and_wal_reset(
        plan in arb_plan(),
        local in proptest::bool::ANY,
    ) {
        let dir = clean_durable_run(&plan, local, 0, None);
        // Write a full snapshot of the final state through a second store
        // handle WITHOUT resetting the WAL — exactly what the directory
        // looks like if the process dies right after the rename.
        {
            let (p, _) = IngestPipeline::durable(config(plan.len(), local, 0), &dir)
                .expect("reload for state export");
            let store = Store::open(&dir).expect("store");
            store
                .write_snapshot(&p.export_snapshot_state())
                .expect("snapshot");
        }
        let (recovered, report) =
            IngestPipeline::durable(config(plan.len(), local, 0), &dir).expect("recover");
        prop_assert!(report.snapshot_loaded);
        prop_assert_eq!(report.wal_ticks_replayed, 0, "all WAL ticks predate the snapshot");
        prop_assert_eq!(report.wal_ticks_skipped, plan.len());
        let full_ref = reference(plan.len(), &plan, local, 0);
        assert_equiv("rename window", &full_ref, &recovered)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checkpoint taken while documents are staged (mid-tick — explicitly
    /// a non-quiescent point per the `PendingState` docs): the snapshot's
    /// pending state restores the pre-checkpoint staged documents, and the
    /// WAL record that later commits the tick holds *every* staged document
    /// (the log was reset at checkpoint time). Recovery must treat the
    /// record as authoritative instead of applying the pre-checkpoint
    /// documents twice.
    #[test]
    fn checkpoint_while_documents_are_staged(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        cache in proptest::bool::ANY,
        at_frac in 0.0f64..1.0,
        split_frac in 0.0f64..1.0,
        commit_after in proptest::bool::ANY,
    ) {
        let cache_capacity = if cache { 64 } else { 0 };
        let at = (at_frac * (plan.len() - 1) as f64) as usize;
        let split = ((split_frac * (plan[at].len() + 1) as f64) as usize).min(plan[at].len());
        let dir = case_dir();
        {
            let (mut p, _) =
                IngestPipeline::durable(config(plan.len(), local, cache_capacity), &dir)
                    .expect("open");
            setup_streams(&mut p);
            commit_plan(&mut p, &plan[..at]);
            stage_docs(&mut p, &plan[at][..split]);
            p.checkpoint().expect("checkpoint mid-stage");
            if commit_after {
                stage_docs(&mut p, &plan[at][split..]);
                p.commit_tick();
            }
            prop_assert!(p.durability_state().is_durable(), "clean run must stay durable");
        }
        if commit_after {
            // The checkpointed tick was committed: the WAL holds its full
            // record, and recovery must land on exactly one copy of every
            // document. `recover_and_check` then resumes the rest of the
            // plan and compares against the never-crashed reference.
            recover_and_check(&dir, &plan, local, cache_capacity)?;
        } else {
            // Crash after the checkpoint but before the commit: only the
            // pre-checkpoint staged documents were made durable, and they
            // come back *staged*, not committed.
            let (mut recovered, report) =
                IngestPipeline::durable(config(plan.len(), local, cache_capacity), &dir)
                    .expect("recover");
            prop_assert!(report.snapshot_loaded);
            prop_assert_eq!(recovered.ticks_committed(), at);
            let mut reference =
                IngestPipeline::new(config(plan.len(), local, cache_capacity));
            setup_streams(&mut reference);
            commit_plan(&mut reference, &plan[..at]);
            stage_docs(&mut reference, &plan[at][..split]);
            assert_equiv("mid-stage recovery", &reference, &recovered)?;

            // Resume both: finish the tick, then the rest of the plan.
            for p in [&mut recovered, &mut reference] {
                stage_docs(p, &plan[at][split..]);
                p.commit_tick();
                commit_plan(p, &plan[at + 1..]);
            }
            prop_assert!(recovered.durability_state().is_durable(), "resume must stay durable");
            assert_equiv("mid-stage resumed", &reference, &recovered)?;
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Clean shutdown between ticks (possibly mid-plan with a checkpoint):
    /// recovery resumes exactly where the run stopped.
    #[test]
    fn crash_between_ticks(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        cache in proptest::bool::ANY,
        stop_frac in 0.0f64..1.0,
        with_checkpoint in proptest::bool::ANY,
    ) {
        let cache_capacity = if cache { 64 } else { 0 };
        let stop = 1 + (stop_frac * (plan.len() - 1) as f64) as usize;
        let dir = case_dir();
        {
            let (mut p, _) =
                IngestPipeline::durable(config(plan.len(), local, cache_capacity), &dir)
                    .expect("open");
            setup_streams(&mut p);
            commit_plan(&mut p, &plan[..stop]);
            if with_checkpoint {
                p.checkpoint().expect("checkpoint");
            }
        }
        recover_and_check(&dir, &plan, local, cache_capacity)?;
    }
}
