//! Chaos property tests: a durable pipeline hammered by *transient* store
//! faults must, once the disk heals, return to `Durable` with **zero
//! committed-tick loss** — the survivor's state and its on-disk recovery
//! are both bit-identical (`f64::to_bits`, full snapshot encoding) to a
//! pipeline that never saw a single fault.
//!
//! Unlike `recovery_proptests` (which synthesizes crash artifacts on a
//! *clean* run's files), this harness scripts live I/O errors into the
//! running pipeline through [`FaultSchedule`]: appends fail mid-frame,
//! fsyncs fail after the frame hit the disk, snapshot writes and renames
//! fail, restore attempts fail again. The degraded-mode state machine
//! buffers unlogged ticks and replays them on re-open; these tests pin
//! down that no interleaving of faults and heals can make it drop or
//! duplicate a committed tick.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use stb_core::{STCombConfig, STLocalConfig};
use stb_corpus::{StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{DurabilityState, IngestConfig, IngestPipeline, MinerKind, RetryPolicy};
use stb_search::Query;
use stb_store::snapshot::encode_snapshot;
use stb_store::{FaultSchedule, FaultSite, InjectedFault, Store};

const N_STREAMS: usize = 3;
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One tick's documents: (stream index, [(term index, count)]).
type TickSpec = Vec<(usize, Vec<(usize, u32)>)>;

fn arb_plan() -> impl Strategy<Value = Vec<TickSpec>> {
    let count = (proptest::bool::ANY, 0u32..25)
        .prop_map(|(burst, c)| if burst { 15 + c } else { 1 + c % 2 });
    let doc = (
        0..N_STREAMS,
        prop::collection::vec((0..TERMS.len(), count), 1..3),
    );
    let tick = prop::collection::vec(doc, 0..3);
    prop::collection::vec(tick, 2..7)
}

/// One scripted fault: fired before commit `tick % plan.len()`, at one of
/// the injectable store syscall sites, optionally tearing the frame after
/// `torn` bytes (WAL appends only; elsewhere `torn` is ignored by the
/// sink). All scripted faults are transient — the contract under test is
/// recovery, and a permanent fault is *specified* to fail-stop.
#[derive(Debug, Clone, Copy)]
struct FaultEvent {
    tick: usize,
    site: usize,
    torn: Option<u8>,
}

const SITES: [FaultSite; 8] = [
    FaultSite::WalOpen,
    FaultSite::WalAppend,
    FaultSite::WalSync,
    FaultSite::WalReset,
    FaultSite::WalRead,
    FaultSite::SnapshotWrite,
    FaultSite::SnapshotSync,
    FaultSite::DirSync,
];

fn arb_script() -> impl Strategy<Value = Vec<FaultEvent>> {
    let event = (0usize..16, 0..SITES.len(), prop::option::of(0u8..40))
        .prop_map(|(tick, site, torn)| FaultEvent { tick, site, torn });
    prop::collection::vec(event, 0..10)
}

fn stream_geo(s: usize) -> GeoPoint {
    match s {
        0 => GeoPoint::new(0.0, 0.0),
        1 => GeoPoint::new(1.0, 1.0),
        _ => GeoPoint::new(40.0 + s as f64, 40.0),
    }
}

/// Generous buffer and an instant (zero-backoff) bounded retry: every
/// scripted storm is survivable, so any tick loss is a state-machine bug,
/// never "the policy said stop".
fn config(ticks: usize, local: bool) -> IngestConfig {
    IngestConfig {
        timeline_capacity: ticks,
        miner: if local {
            MinerKind::STLocal(STLocalConfig::default())
        } else {
            MinerKind::STComb(STCombConfig::default())
        },
        retry: RetryPolicy::immediate(1),
        max_buffered_ticks: 64,
        ..IngestConfig::default()
    }
}

fn case_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "stb-chaos-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup_streams(pipeline: &mut IngestPipeline) {
    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
}

fn commit_plan(pipeline: &mut IngestPipeline, plan: &[TickSpec]) {
    for tick in plan {
        stage_tick(pipeline, tick);
        pipeline.commit_tick();
    }
}

fn stage_tick(pipeline: &mut IngestPipeline, docs: &TickSpec) {
    for (stream, bag) in docs {
        let mut counts = HashMap::new();
        for &(term, count) in bag {
            let id = pipeline.intern(TERMS[term]);
            *counts.entry(id).or_insert(0) += count;
        }
        pipeline.stage_document(StreamId(*stream as u32), counts);
    }
}

/// A never-durable, never-faulted reference over the same plan.
fn reference(plan: &[TickSpec], local: bool) -> IngestPipeline {
    let mut p = IngestPipeline::new(config(plan.len(), local));
    setup_streams(&mut p);
    commit_plan(&mut p, plan);
    p
}

/// Bit-for-bit equivalence (same discipline as `recovery_proptests`): the
/// full snapshot encoding plus top-k scores compared as raw bit patterns.
fn assert_equiv(
    label: &str,
    expect: &IngestPipeline,
    got: &IngestPipeline,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        expect.ticks_committed(),
        got.ticks_committed(),
        "{}: ticks",
        label
    );
    let se = encode_snapshot(&expect.export_snapshot_state());
    let sg = encode_snapshot(&got.export_snapshot_state());
    prop_assert_eq!(se, sg, "{}: snapshot encodings differ", label);
    let terms: Vec<TermId> = expect.collection().terms().collect();
    let he = expect.search_handle();
    let hg = got.search_handle();
    for &t in &terms {
        let q = Query::terms([t]).top_k(5);
        let re = he.query(&q).map(|r| r.results).unwrap_or_default();
        let rg = hg.query(&q).map(|r| r.results).unwrap_or_default();
        prop_assert_eq!(re.len(), rg.len(), "{}: result count", label);
        for (e, g) in re.iter().zip(&rg) {
            prop_assert_eq!(e.doc, g.doc, "{}: doc", label);
            prop_assert_eq!(e.score.to_bits(), g.score.to_bits(), "{}: score", label);
        }
    }
    Ok(())
}

/// Commits `plan` on a fault-scheduled durable pipeline, firing `script`'s
/// events before their ticks; returns the survivor (dir kept alive by the
/// caller).
fn faulted_run(
    dir: &PathBuf,
    plan: &[TickSpec],
    local: bool,
    script: &[FaultEvent],
    faults: &FaultSchedule,
) -> IngestPipeline {
    let store = Store::open_with_faults(dir, faults.clone()).expect("open store");
    let (mut p, _) =
        IngestPipeline::durable_with_store(config(plan.len(), local), store).expect("open");
    setup_streams(&mut p);
    for (i, tick) in plan.iter().enumerate() {
        for ev in script.iter().filter(|ev| ev.tick % plan.len() == i) {
            let fault = match ev.torn {
                Some(n) => InjectedFault::torn(n as usize),
                None => InjectedFault::transient(),
            };
            faults.fail_next_at(SITES[ev.site], fault);
        }
        stage_tick(&mut p, tick);
        p.commit_tick();
    }
    p
}

proptest! {
    /// The tentpole invariant: any interleaving of transient faults across
    /// every injectable store site, followed by a heal, converges back to
    /// `Durable` — and both the surviving pipeline and a cold recovery
    /// from its directory are bit-identical to a never-faulted run.
    #[test]
    fn transient_fault_storms_heal_to_bit_identical_state(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        script in arb_script(),
    ) {
        let dir = case_dir();
        let faults = FaultSchedule::new();
        let mut survivor = faulted_run(&dir, &plan, local, &script, &faults);

        // The storm may have left the pipeline degraded (never
        // non-durable: every scripted fault is transient and the buffer
        // is generous). Heal the disk and demand full convergence.
        prop_assert!(
            survivor.durability_state() != DurabilityState::NonDurable,
            "transient-only storm must never fail-stop"
        );
        faults.heal();
        let state = survivor.try_recover_durability();
        prop_assert_eq!(state, DurabilityState::Durable, "healed disk must recover");
        prop_assert!(survivor.health().last_error.is_none());

        // Survivor ≡ never-faulted reference, bit for bit.
        let reference = reference(&plan, local);
        assert_equiv("survivor", &reference, &survivor)?;
        drop(survivor);

        // Zero committed-tick loss on disk: a cold, fault-free recovery
        // replays the WAL into the same bit-identical state.
        let (recovered, _) =
            IngestPipeline::durable(config(plan.len(), local), &dir).expect("recover");
        assert_equiv("cold recovery", &reference, &recovered)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same convergence under a stochastic storm (`FaultSchedule::storm`)
    /// with a mid-plan checkpoint in the line of fire: snapshot writes,
    /// renames, dir syncs, and the log rotation all absorb faults without
    /// losing a tick.
    #[test]
    fn stochastic_storm_with_checkpoint_converges(
        plan in arb_plan(),
        local in proptest::bool::ANY,
        seed in 1u64..u64::MAX,
        fail_permille in 0u32..700,
    ) {
        let dir = case_dir();
        let faults = FaultSchedule::new();
        let store = Store::open_with_faults(&dir, faults.clone()).expect("open store");
        let (mut survivor, _) =
            IngestPipeline::durable_with_store(config(plan.len(), local), store).expect("open");
        setup_streams(&mut survivor);
        faults.storm(seed, 200, fail_permille);
        let mid = plan.len() / 2;
        for (i, tick) in plan.iter().enumerate() {
            stage_tick(&mut survivor, tick);
            survivor.commit_tick();
            if i + 1 == mid {
                // Checkpoint failures under the storm are legitimate (the
                // error is surfaced); durability of committed ticks is not
                // allowed to regress to fail-stop.
                let _ = survivor.checkpoint();
            }
        }
        prop_assert!(
            survivor.durability_state() != DurabilityState::NonDurable,
            "transient-only storm must never fail-stop"
        );
        faults.heal();
        prop_assert_eq!(survivor.try_recover_durability(), DurabilityState::Durable);

        let reference = reference(&plan, local);
        assert_equiv("storm survivor", &reference, &survivor)?;
        drop(survivor);
        let (recovered, _) =
            IngestPipeline::durable(config(plan.len(), local), &dir).expect("recover");
        assert_equiv("storm cold recovery", &reference, &recovered)?;
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A storm long enough to overflow a tiny buffer *and* exhaust every
/// restore attempt fail-stops deterministically — and stays fail-stopped
/// after the disk heals until a checkpoint explicitly revives it.
#[test]
fn unsurvivable_storm_fail_stops_and_checkpoint_revives() {
    let dir = case_dir();
    let faults = FaultSchedule::new();
    let store = Store::open_with_faults(&dir, faults.clone()).expect("open store");
    let config = IngestConfig {
        timeline_capacity: 8,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        retry: RetryPolicy::none(),
        max_buffered_ticks: 1,
        ..IngestConfig::default()
    };
    let (mut p, _) = IngestPipeline::durable_with_store(config, store).expect("open");
    let s = p.add_stream("A", GeoPoint::new(0.0, 0.0));
    let t = p.intern("alpha");
    faults.storm(11, 10_000, 1000);
    for _ in 0..4 {
        p.stage_document(s, HashMap::from([(t, 2)]));
        p.commit_tick();
    }
    assert_eq!(p.durability_state(), DurabilityState::NonDurable);
    faults.heal();
    // Healing alone must not silently resurrect a fail-stopped log (ticks
    // were dropped from it; only a full snapshot makes the state safe).
    assert_eq!(p.try_recover_durability(), DurabilityState::NonDurable);
    p.checkpoint().expect("checkpoint revives");
    assert_eq!(p.durability_state(), DurabilityState::Durable);

    // The revived directory recovers everything the survivor held.
    let expect = encode_snapshot(&p.export_snapshot_state());
    drop(p);
    let config = IngestConfig {
        timeline_capacity: 8,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        ..IngestConfig::default()
    };
    let (recovered, report) = IngestPipeline::durable(config, &dir).expect("recover");
    assert!(report.snapshot_loaded);
    assert_eq!(recovered.ticks_committed(), 4);
    assert_eq!(expect, encode_snapshot(&recovered.export_snapshot_state()));
    let _ = std::fs::remove_dir_all(&dir);
}
