//! Corruption-rejection tests: a damaged store must fail **closed** with a
//! typed [`StoreError`] — never panic, and never silently load as an empty
//! index (which would look like a healthy engine that lost all its data).
//! The one sanctioned repair is the WAL tail: a torn *final* record is the
//! expected signature of a crash mid-append, so it is discarded and
//! recovery proceeds from the last whole record.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use stb_core::STLocalConfig;
use stb_geo::GeoPoint;
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind, StoreError};
use stb_store::{flip_bit_file, truncate_file, SNAPSHOT_FILE, WAL_FILE};

fn config(ticks: usize) -> IngestConfig {
    IngestConfig {
        timeline_capacity: ticks,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        ..IngestConfig::default()
    }
}

fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stb-corruption-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs a 5-tick durable corpus and checkpoints it, leaving both a
/// snapshot and (after two more ticks) a non-empty WAL in `dir`.
fn seed_store(dir: &Path) {
    let (mut p, _) = IngestPipeline::durable(config(7), dir).expect("open");
    let a = p.add_stream("A", GeoPoint::new(0.0, 0.0));
    let b = p.add_stream("B", GeoPoint::new(1.0, 1.0));
    let quake = p.intern("quake");
    for tick in 0..5 {
        let f = if (2..4).contains(&tick) { 25 } else { 1 };
        p.stage_document(a, HashMap::from([(quake, f)]));
        p.stage_document(b, HashMap::from([(quake, f)]));
        p.commit_tick();
    }
    p.checkpoint().expect("checkpoint");
    for _ in 5..7 {
        p.stage_document(a, HashMap::from([(quake, 1)]));
        p.commit_tick();
    }
    assert!(p.durability_state().is_durable());
}

fn recover(dir: &Path) -> Result<(IngestPipeline, stb_ingest::RecoveryReport), StoreError> {
    IngestPipeline::durable(config(7), dir)
}

#[test]
fn zero_length_snapshot_is_truncated_error() {
    let dir = case_dir("zero-snap");
    seed_store(&dir);
    std::fs::write(dir.join(SNAPSHOT_FILE), []).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_header_is_truncated_error() {
    let dir = case_dir("short-snap");
    seed_store(&dir);
    truncate_file(&dir.join(SNAPSHOT_FILE), 10).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_snapshot_version_is_unsupported_version() {
    let dir = case_dir("version");
    seed_store(&dir);
    // The version u32 sits right after the 8-byte magic; byte 8 is its
    // low-order byte. Flipping bit 6 turns version 1 into 65.
    flip_bit_file(&dir.join(SNAPSHOT_FILE), 8, 6).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::UnsupportedVersion { found: 65, .. }) => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_snapshot_magic_is_bad_magic() {
    let dir = case_dir("magic");
    seed_store(&dir);
    flip_bit_file(&dir.join(SNAPSHOT_FILE), 0, 0).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_snapshot_payload_bit_is_checksum_mismatch() {
    let dir = case_dir("payload-bit");
    seed_store(&dir);
    let path = dir.join(SNAPSHOT_FILE);
    let len = std::fs::metadata(&path).unwrap().len();
    // Flip a bit in the middle of the payload (past the 24-byte header).
    flip_bit_file(&path, 24 + (len - 24) / 2, 3).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_never_loads_as_empty_index() {
    // The "fail closed" property stated directly: corruption is an error,
    // not a quietly empty pipeline a caller could mistake for real state.
    let dir = case_dir("fail-closed");
    seed_store(&dir);
    let path = dir.join(SNAPSHOT_FILE);
    for (tag, damage) in [
        (
            "truncate",
            Box::new(|p: &Path| truncate_file(p, 30).unwrap()) as Box<dyn Fn(&Path)>,
        ),
        (
            "bitflip",
            Box::new(|p: &Path| flip_bit_file(p, 40, 1).unwrap()),
        ),
    ] {
        let clean = std::fs::read(&path).unwrap();
        damage(&path);
        let result = recover(&dir);
        assert!(result.is_err(), "{tag}: corrupt snapshot must not recover");
        std::fs::write(&path, clean).unwrap();
    }
    // Restored clean bytes recover fine — the directory itself is sound.
    let (p, report) = recover(&dir).expect("clean recovery");
    assert!(report.snapshot_loaded);
    assert_eq!(p.ticks_committed(), 7);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_wal_magic_is_bad_magic() {
    let dir = case_dir("wal-magic");
    seed_store(&dir);
    flip_bit_file(&dir.join(WAL_FILE), 0, 0).unwrap();
    match recover(&dir).map(|_| ()) {
        Err(StoreError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_tail_truncation_recovers_to_last_whole_record() {
    let dir = case_dir("wal-tail");
    seed_store(&dir);
    // The WAL holds ticks 5 and 6 (the checkpoint truncated ticks 0..5).
    // Chop one byte off the end: tick 6's record is torn, tick 5 survives.
    let path = dir.join(WAL_FILE);
    let len = std::fs::metadata(&path).unwrap().len();
    truncate_file(&path, len - 1).unwrap();
    let (p, report) = recover(&dir).expect("tail repair");
    assert!(report.snapshot_loaded);
    assert_eq!(report.snapshot_ticks, 5);
    assert_eq!(
        report.wal_ticks_replayed, 1,
        "tick 5 replays, tick 6 is torn"
    );
    assert!(report.wal_bytes_discarded > 0);
    assert_eq!(p.ticks_committed(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_truncated_to_header_recovers_snapshot_only() {
    let dir = case_dir("wal-header");
    seed_store(&dir);
    truncate_file(&dir.join(WAL_FILE), stb_store::WAL_HEADER_LEN).unwrap();
    let (p, report) = recover(&dir).expect("snapshot-only recovery");
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_ticks_replayed, 0);
    assert_eq!(p.ticks_committed(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}
