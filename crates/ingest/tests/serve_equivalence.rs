//! Serving-tier equivalence property tests: the sharded, lock-free
//! [`SearchHandle`] must answer **byte-identically** to a single-threaded,
//! unsharded [`BurstySearchEngine`] fed the same tick receipts — while
//! reader threads hammer the handle concurrently with the commits.
//!
//! The shadow engine replays exactly what the pipeline's write side does
//! each commit (`update_collection` + per-delta `set_patterns`), so any
//! divergence at all — a float bit, a result order, an error variant —
//! indicates a sharding, gather, or publication bug, not noise.
//!
//! Three axes are swept per case: miner (`STLocal`/`STComb`), result cache
//! (on/off), and shard count (1, 2, 3, 8). The query set covers unfiltered
//! term queries, text queries, time-window and region filters, per-query
//! relevance overrides, and explanations.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use stb_core::{STCombConfig, STLocalConfig};
use stb_corpus::{StreamId, TermId};
use stb_geo::{GeoPoint, Rect};
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind, PatternDelta};
use stb_search::{
    BurstySearchEngine, EngineConfig, Query, QueryError, QueryResponse, Relevance, SearchResult,
};

const N_STREAMS: usize = 3;
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One tick's documents: (stream index, [(term index, count)]).
type TickSpec = Vec<(usize, Vec<(usize, u32)>)>;

fn arb_plan() -> impl Strategy<Value = Vec<TickSpec>> {
    let count = (proptest::bool::ANY, 0u32..25)
        .prop_map(|(burst, c)| if burst { 15 + c } else { 1 + c % 2 });
    let doc = (
        0..N_STREAMS,
        prop::collection::vec((0..TERMS.len(), count), 1..3),
    );
    let tick = prop::collection::vec(doc, 0..4);
    prop::collection::vec(tick, 2..8)
}

fn stream_geo(s: usize) -> GeoPoint {
    match s {
        0 => GeoPoint::new(0.0, 0.0),
        1 => GeoPoint::new(1.0, 1.0),
        _ => GeoPoint::new(40.0 + s as f64, 40.0),
    }
}

/// The fixed query set every generation is checked with: unfiltered,
/// text-resolved, filtered (time, region, both), relevance-overridden, and
/// explained queries.
fn query_set(n_ticks: usize) -> Vec<Query> {
    let t: Vec<TermId> = (0..TERMS.len() as u32).map(TermId).collect();
    let mid = n_ticks / 2;
    let near = Rect::new(-0.5, -0.5, 1.5, 1.5);
    vec![
        Query::terms([t[0]]).top_k(5),
        Query::terms([t[1], t[2]]).top_k(4),
        Query::terms(t.iter().copied()).top_k(10),
        Query::text("alpha beta").top_k(5),
        Query::text("alpha unknown-word").top_k(5),
        Query::terms([t[0], t[3]]).top_k(6).time_window(0..=mid),
        Query::terms([t[1]]).top_k(6).region(near),
        Query::terms([t[2], t[0]])
            .top_k(8)
            .time_window(0..=mid)
            .region(near),
        Query::terms([t[0]]).top_k(5).relevance(Relevance::RawFreq),
        Query::terms([t[3], t[1]]).top_k(5).explain(true),
    ]
}

fn assert_bit_identical(
    label: &str,
    expect: &Result<QueryResponse, QueryError>,
    got: &Result<QueryResponse, QueryError>,
    compare_stats: bool,
) -> Result<(), TestCaseError> {
    match (expect, got) {
        (Ok(e), Ok(g)) => {
            prop_assert_eq!(e.results.len(), g.results.len(), "{}: result count", label);
            for (er, gr) in e.results.iter().zip(&g.results) {
                prop_assert_eq!(er.doc, gr.doc, "{}: doc", label);
                prop_assert_eq!(
                    er.score.to_bits(),
                    gr.score.to_bits(),
                    "{}: score {} vs {}",
                    label,
                    er.score,
                    gr.score
                );
            }
            prop_assert_eq!(&e.explanations, &g.explanations, "{}: explanations", label);
            if compare_stats {
                prop_assert_eq!(&e.stats, &g.stats, "{}: stats", label);
            }
        }
        (Err(e), Err(g)) => prop_assert_eq!(e, g, "{}: error", label),
        (e, g) => prop_assert!(false, "{}: disagree on success: {:?} vs {:?}", label, e, g),
    }
    Ok(())
}

/// Results of the query set against one serving generation, bit-packed for
/// comparison (doc ids and score bits).
type GenReference = Vec<Result<Vec<(u32, u64)>, QueryError>>;

fn reference_of(responses: &[Result<QueryResponse, QueryError>]) -> GenReference {
    responses
        .iter()
        .map(|r| {
            r.as_ref()
                .map(|resp| {
                    resp.results
                        .iter()
                        .map(|s: &SearchResult| (s.doc.0, s.score.to_bits()))
                        .collect()
                })
                .map_err(Clone::clone)
        })
        .collect()
}

/// The shared check: drive `plan` through a sharded pipeline while reader
/// threads hammer the handle, and compare every generation bit-for-bit
/// against a single-threaded unsharded shadow engine fed the same receipts.
fn check_serving_equivalence(
    plan: &[TickSpec],
    miner: MinerKind,
    cache_capacity: usize,
    n_shards: usize,
) -> Result<(), TestCaseError> {
    let engine_config = EngineConfig::default();
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: plan.len(),
        miner,
        engine: engine_config,
        cache_capacity,
        n_shards,
        ..IngestConfig::default()
    });
    // Shadow: a plain single-threaded engine over the same snapshots,
    // constructed from the same *empty* collection the pipeline's engine
    // started from (generation 1 is published before any stream or term
    // exists). The cache stays off so its stats are deterministic; with the
    // handle cache off too, stats must agree exactly.
    let mut shadow = BurstySearchEngine::new(pipeline.collection(), engine_config);
    shadow.set_cache_capacity(0);
    shadow.finalize_with_threads(1);

    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
    // Intern the full vocabulary up front so the query set resolves the
    // same term ids from tick 0.
    for term in TERMS {
        pipeline.intern(term);
    }

    let queries = query_set(plan.len());
    let handle = pipeline.search_handle();
    let compare_stats = cache_capacity == 0;

    // Per-generation references (query-set results computed by the shadow),
    // filled by the committing thread; read by the readers only after join.
    let references: Mutex<HashMap<u64, GenReference>> = Mutex::new(HashMap::new());
    references.lock().unwrap().insert(
        handle.generation(),
        reference_of(&shadow.query_many(&queries)),
    );

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| -> Result<(), TestCaseError> {
        // Readers: record (generation, per-query results) whenever a whole
        // batch is bracketed by one stable generation.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let h = handle.clone();
            let q = &queries;
            let done_ref = &done;
            readers.push(scope.spawn(move || {
                let mut seen: Vec<(u64, GenReference)> = Vec::new();
                loop {
                    let finished = done_ref.load(Ordering::SeqCst);
                    let g1 = h.generation();
                    let responses = h.query_many(&q[..]);
                    let g2 = h.generation();
                    if g1 == g2 {
                        seen.push((g1, reference_of(&responses)));
                    }
                    if finished {
                        return seen;
                    }
                }
            }));
        }

        // Writer: commit the plan tick by tick, mirroring each receipt into
        // the shadow and checking the handle against it bit-for-bit.
        for tick in plan {
            for (stream, bag) in tick {
                let mut counts = HashMap::new();
                for &(term, count) in bag {
                    let id = pipeline.intern(TERMS[term]);
                    *counts.entry(id).or_insert(0) += count;
                }
                pipeline.stage_document(StreamId(*stream as u32), counts);
            }
            let receipt = pipeline.commit_tick();
            shadow.update_collection(pipeline.collection(), &receipt.new_docs);
            for delta in &receipt.deltas {
                match delta {
                    PatternDelta::Regional { term, patterns } => {
                        shadow.set_patterns(*term, patterns);
                    }
                    PatternDelta::Combinatorial { term, patterns } => {
                        shadow.set_patterns(*term, patterns);
                    }
                }
            }

            let generation = handle.generation();
            let expect = shadow.query_many(&queries);
            let got = handle.query_many(&queries);
            for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
                assert_bit_identical(&format!("query {i}"), e, g, compare_stats)?;
            }
            references
                .lock()
                .unwrap()
                .insert(generation, reference_of(&expect));
        }
        done.store(true, Ordering::SeqCst);

        // Every bracketed concurrent batch must match the reference of the
        // generation it observed.
        let references = references.lock().unwrap();
        for reader in readers {
            let seen = reader.join().expect("reader thread");
            for (generation, batch) in seen {
                let reference = references
                    .get(&generation)
                    .expect("bracketed generation must have been published by the writer");
                prop_assert_eq!(
                    reference,
                    &batch,
                    "concurrent batch diverged at generation {}",
                    generation
                );
            }
        }
        Ok(())
    })?;

    // Quiesced double-check: a second pass exercises the (now warm) cache;
    // results must still be bit-identical to the shadow.
    let expect = shadow.query_many(&queries);
    let got = handle.query_many(&queries);
    for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
        assert_bit_identical(&format!("quiesced query {i}"), e, g, false)?;
    }
    Ok(())
}

proptest! {
    #[test]
    fn sharded_serving_equals_unsharded_stlocal(
        plan in arb_plan(),
        cache in proptest::bool::ANY,
    ) {
        check_serving_equivalence(
            &plan,
            MinerKind::STLocal(STLocalConfig::default()),
            if cache { 64 } else { 0 },
            8,
        )?;
    }

    #[test]
    fn sharded_serving_equals_unsharded_stcomb(
        plan in arb_plan(),
        cache in proptest::bool::ANY,
    ) {
        check_serving_equivalence(
            &plan,
            MinerKind::STComb(STCombConfig::default()),
            if cache { 64 } else { 0 },
            8,
        )?;
    }

    #[test]
    fn equivalence_holds_for_every_shard_count(
        plan in arb_plan(),
        shard_choice in 0usize..4,
    ) {
        let n_shards = [1usize, 2, 3, 8][shard_choice];
        check_serving_equivalence(
            &plan,
            MinerKind::STLocal(STLocalConfig::default()),
            64,
            n_shards,
        )?;
    }
}
