//! Replay-equivalence property tests: ingesting a corpus one document at a
//! time through the live pipeline, then querying, must be **byte-identical**
//! to the batch path (`CollectionBuilder` + batch-mine every term +
//! `finalize()`), for both miners, with the result cache on and off.
//!
//! Exactness (not approximate agreement) is intentional: the incremental
//! path performs the same floating-point operations in the same order as
//! the batch path — term counts are integral so tensor aggregation is
//! exact, and each miner consumes identical per-term inputs — so any drift
//! at all indicates a dirty-term bookkeeping bug.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;
use std::sync::Arc;

use stb_core::{
    CombinatorialPattern, Pattern, RegionalPattern, STComb, STCombConfig, STLocal, STLocalConfig,
};
use stb_corpus::{Collection, CollectionBuilder, StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind, PatternDelta, SearchHandle};
use stb_search::{BurstySearchEngine, EngineConfig, Query, SearchResult};

/// Typed-API term query against a reference engine.
fn engine_run(engine: &BurstySearchEngine, terms: &[TermId], k: usize) -> Vec<SearchResult> {
    engine
        .query(&Query::terms(terms.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
}

/// Typed-API term query through a live handle.
fn handle_run(handle: &SearchHandle, terms: &[TermId], k: usize) -> Vec<SearchResult> {
    handle
        .query(&Query::terms(terms.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
}

const N_STREAMS: usize = 3;
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One tick's documents: (stream index, [(term index, count)]).
type TickSpec = Vec<(usize, Vec<(usize, u32)>)>;

/// A corpus plan: one `TickSpec` per timestamp. Counts are skewed so bursts
/// (and therefore non-trivial patterns) actually occur.
fn arb_plan() -> impl Strategy<Value = Vec<TickSpec>> {
    // Counts are either background noise (1..3) or a burst (15..40).
    let count = (proptest::bool::ANY, 0u32..25)
        .prop_map(|(burst, c)| if burst { 15 + c } else { 1 + c % 2 });
    let doc = (
        0..N_STREAMS,
        prop::collection::vec((0..TERMS.len(), count), 1..3),
    );
    let tick = prop::collection::vec(doc, 0..4);
    prop::collection::vec(tick, 2..9)
}

fn stream_geo(s: usize) -> GeoPoint {
    // Two nearby streams and one far away, so regional patterns can both
    // include and exclude streams.
    match s {
        0 => GeoPoint::new(0.0, 0.0),
        1 => GeoPoint::new(1.0, 1.0),
        _ => GeoPoint::new(40.0 + s as f64, 40.0),
    }
}

/// Batch path: builder → collection, interning terms in exactly the order
/// the pipeline replay does (document by document, term-list order).
fn batch_collection(plan: &[TickSpec]) -> Collection {
    let mut b = CollectionBuilder::new(plan.len());
    for s in 0..N_STREAMS {
        b.add_stream(&format!("s{s}"), stream_geo(s));
    }
    for (ts, tick) in plan.iter().enumerate() {
        for (stream, bag) in tick {
            let mut counts = HashMap::new();
            for &(term, count) in bag {
                let id = b.dict_mut().intern(TERMS[term]);
                *counts.entry(id).or_insert(0) += count;
            }
            b.add_document(StreamId(*stream as u32), ts, counts);
        }
    }
    b.build()
}

/// Live path: the same plan driven through the pipeline tick by tick.
fn ingest_pipeline(plan: &[TickSpec], miner: MinerKind, cache_capacity: usize) -> IngestPipeline {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: plan.len(),
        miner,
        engine: EngineConfig::default(),
        cache_capacity,
        ..IngestConfig::default()
    });
    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
    for tick in plan {
        for (stream, bag) in tick {
            let mut counts = HashMap::new();
            for &(term, count) in bag {
                let id = pipeline.intern(TERMS[term]);
                *counts.entry(id).or_insert(0) += count;
            }
            pipeline.stage_document(StreamId(*stream as u32), counts);
        }
        pipeline.commit_tick();
    }
    pipeline
}

fn queries(collection: &Collection) -> Vec<Vec<TermId>> {
    let terms: Vec<TermId> = collection.terms().collect();
    let mut queries: Vec<Vec<TermId>> = terms.iter().map(|&t| vec![t]).collect();
    if terms.len() >= 2 {
        queries.push(vec![terms[0], terms[1]]);
        queries.push(terms.clone());
    }
    queries
}

fn assert_identical_results(
    label: &str,
    expect: &[SearchResult],
    got: &[SearchResult],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(expect.len(), got.len(), "{}: result count", label);
    for (e, g) in expect.iter().zip(got) {
        prop_assert_eq!(e.doc, g.doc, "{}: doc", label);
        // Byte-identical, not approximately equal.
        prop_assert_eq!(
            e.score.to_bits(),
            g.score.to_bits(),
            "{}: score {} vs {}",
            label,
            e.score,
            g.score
        );
    }
    Ok(())
}

fn assert_identical_regional(
    expect: &[RegionalPattern],
    got: &[RegionalPattern],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(expect.len(), got.len(), "pattern count");
    for (e, g) in expect.iter().zip(got) {
        prop_assert_eq!(&e.streams, &g.streams);
        prop_assert_eq!(e.timeframe, g.timeframe);
        prop_assert_eq!(e.score.to_bits(), g.score.to_bits(), "pattern score");
    }
    Ok(())
}

fn assert_identical_comb(
    expect: &[CombinatorialPattern],
    got: &[CombinatorialPattern],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(expect.len(), got.len(), "pattern count");
    for (e, g) in expect.iter().zip(got) {
        prop_assert_eq!(&e.streams, &g.streams);
        prop_assert_eq!(e.timeframe, g.timeframe);
        prop_assert_eq!(e.score.to_bits(), g.score.to_bits(), "pattern score");
    }
    Ok(())
}

/// The shared equivalence check: run the plan through both paths with the
/// given miner and cache setting and compare patterns and top-k results.
fn check_equivalence(
    plan: &[TickSpec],
    local: bool,
    cache_capacity: usize,
) -> Result<(), TestCaseError> {
    let batch = batch_collection(plan);
    let miner = if local {
        MinerKind::STLocal(STLocalConfig::default())
    } else {
        MinerKind::STComb(STCombConfig::default())
    };
    let pipeline = ingest_pipeline(plan, miner, cache_capacity);

    // Batch engine: mine every term, register, finalize.
    let shared: Arc<Collection> = Arc::new(batch);
    let mut batch_engine = BurstySearchEngine::new(Arc::clone(&shared), EngineConfig::default());
    batch_engine.set_cache_capacity(cache_capacity);
    for term in shared.terms() {
        if local {
            let (patterns, _) = STLocal::mine_collection(&shared, term, STLocalConfig::default());
            batch_engine.set_patterns(term, &patterns);
        } else {
            let patterns = STComb::new().mine_collection(&shared, term);
            batch_engine.set_patterns(term, &patterns);
        }
    }
    batch_engine.finalize_with_threads(2);

    // 1. The engines hold byte-identical patterns: compare the pipeline's
    //    final per-term mining state against the batch miner output.
    for term in shared.terms() {
        match pipeline.current_patterns(term) {
            PatternDelta::Regional { patterns, .. } => {
                let (expect, _) = STLocal::mine_collection(&shared, term, STLocalConfig::default());
                assert_identical_regional(&expect, &patterns)?;
            }
            PatternDelta::Combinatorial { patterns, .. } => {
                let expect = STComb::new().mine_collection(&shared, term);
                assert_identical_comb(&expect, &patterns)?;
            }
        }
    }

    // 2. Identical collections as far as any consumer can observe.
    let live = pipeline.collection();
    prop_assert_eq!(shared.documents().len(), live.documents().len());
    prop_assert_eq!(shared.n_terms(), live.n_terms());
    prop_assert_eq!(shared.timeline_len(), live.timeline_len());

    // 3. Byte-identical top-k, twice (the second round exercises the cache
    //    when it is enabled).
    let handle = pipeline.search_handle();
    for _round in 0..2 {
        for query in queries(&shared) {
            for k in [1, 3, 10] {
                assert_identical_results(
                    if local { "stlocal" } else { "stcomb" },
                    &engine_run(&batch_engine, &query, k),
                    &handle_run(&handle, &query, k),
                )?;
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn replay_equals_batch_stlocal(plan in arb_plan(), cache in proptest::bool::ANY) {
        check_equivalence(&plan, true, if cache { 64 } else { 0 })?;
    }

    #[test]
    fn replay_equals_batch_stcomb(plan in arb_plan(), cache in proptest::bool::ANY) {
        check_equivalence(&plan, false, if cache { 64 } else { 0 })?;
    }

    #[test]
    fn replay_equals_batch_with_growing_timeline(plan in arb_plan(), local in proptest::bool::ANY) {
        // timeline_capacity 0: every tick grows the timeline on demand. The
        // pipeline must still converge to the batch result (for STComb this
        // re-dirties every term each tick; for STLocal growth is free).
        let batch = batch_collection(&plan);
        let miner = if local {
            MinerKind::STLocal(STLocalConfig::default())
        } else {
            MinerKind::STComb(STCombConfig::default())
        };
        let mut pipeline = IngestPipeline::new(IngestConfig {
            timeline_capacity: 0,
            miner,
            ..Default::default()
        });
        for s in 0..N_STREAMS {
            pipeline.add_stream(&format!("s{s}"), stream_geo(s));
        }
        for tick in &plan {
            for (stream, bag) in tick {
                let mut counts = HashMap::new();
                for &(term, count) in bag {
                    let id = pipeline.intern(TERMS[term]);
                    *counts.entry(id).or_insert(0) += count;
                }
                pipeline.stage_document(StreamId(*stream as u32), counts);
            }
            pipeline.commit_tick();
        }
        let shared: Arc<Collection> = Arc::new(batch);
        let mut batch_engine = BurstySearchEngine::new(Arc::clone(&shared), EngineConfig::default());
        batch_engine.set_cache_capacity(0);
        for term in shared.terms() {
            if local {
                let (patterns, _) = STLocal::mine_collection(&shared, term, STLocalConfig::default());
                batch_engine.set_patterns(term, &patterns);
            } else {
                batch_engine.set_patterns(term, &STComb::new().mine_collection(&shared, term));
            }
        }
        batch_engine.finalize_with_threads(2);
        let handle = pipeline.search_handle();
        for query in queries(&shared) {
            assert_identical_results(
                "grow",
                &engine_run(&batch_engine, &query, 10),
                &handle_run(&handle, &query, 10),
            )?;
        }
    }

    #[test]
    fn mined_pattern_overlap_is_consistent(plan in arb_plan()) {
        // Sanity on the emitted deltas themselves: every reported pattern
        // overlap matches the Pattern trait's stream/timestamp test.
        let pipeline = ingest_pipeline(&plan, MinerKind::STLocal(STLocalConfig::default()), 0);
        let collection = pipeline.collection();
        for term in collection.terms() {
            if let PatternDelta::Regional { patterns, .. } = pipeline.current_patterns(term) {
                for p in &patterns {
                    prop_assert!(p.timeframe.end < collection.timeline_len());
                    for &s in &p.streams {
                        prop_assert!(s.index() < collection.n_streams());
                        prop_assert!(p.overlaps(s, p.timeframe.start));
                    }
                }
            }
        }
    }
}
