//! Regression tests for the durable replay path: on the same TSV corpus,
//! `load_snapshot + replay_wal` must be indistinguishable from
//! `replay_tsv` — identical collection tensor bytes, identical engine
//! state, identical scores down to the `f64` bit pattern. This is the
//! contract that makes the store a safe substitute for a full rebuild.

use std::io::Cursor;
use std::path::PathBuf;

use stb_corpus::TermId;
use stb_ingest::{
    replay_tsv, replay_tsv_durable, IngestConfig, IngestPipeline, Query, SearchHandle,
};
use stb_search::{EngineConfig, Relevance, SearchResult};
use stb_store::snapshot::encode_snapshot;

/// A synthetic 12-tick, 3-stream corpus with two bursty terms and one
/// background term, exercising mid-file stream arrival as well.
fn corpus() -> String {
    let mut s = String::from("C\t12\n");
    s.push_str("S\t0\tA\t0\t0\t0\t0\n");
    s.push_str("S\t1\tB\t1\t1\t1\t1\n");
    for ts in 0..4 {
        s.push_str(&format!("D\t0\t{ts}\tquake:1\tcalm:2\n"));
        s.push_str(&format!("D\t1\t{ts}\tquake:1\n"));
    }
    // Third stream comes online mid-file, then both nearby streams burst.
    s.push_str("S\t2\tC\t50\t50\t50\t50\n");
    for ts in 4..8 {
        s.push_str(&format!("D\t0\t{ts}\tquake:25\tstorm:18\n"));
        s.push_str(&format!("D\t1\t{ts}\tquake:30\n"));
        s.push_str(&format!("D\t2\t{ts}\tcalm:1\n"));
    }
    for ts in 8..12 {
        s.push_str(&format!("D\t0\t{ts}\tquake:1\n"));
        s.push_str(&format!("D\t2\t{ts}\tstorm:2\tcalm:1\n"));
    }
    s
}

fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stb-durable-replay-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(handle: &SearchHandle, terms: &[TermId], k: usize) -> Vec<SearchResult> {
    handle
        .query(&Query::terms(terms.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
}

fn assert_pipelines_identical(expect: &IngestPipeline, got: &IngestPipeline) {
    assert_eq!(expect.ticks_committed(), got.ticks_committed());
    assert_eq!(
        encode_snapshot(&expect.export_snapshot_state()),
        encode_snapshot(&got.export_snapshot_state()),
        "snapshot encodings diverge"
    );
    let terms: Vec<TermId> = expect.collection().terms().collect();
    let he = expect.search_handle();
    let hg = got.search_handle();
    for term in &terms {
        for k in [1, 5, 20] {
            let re = run(&he, &[*term], k);
            let rg = run(&hg, &[*term], k);
            assert_eq!(re.len(), rg.len());
            for (e, g) in re.iter().zip(&rg) {
                assert_eq!(e.doc, g.doc);
                assert_eq!(e.score.to_bits(), g.score.to_bits(), "score bits");
            }
        }
    }
    let re = run(&he, &terms, 20);
    let rg = run(&hg, &terms, 20);
    assert_eq!(re.len(), rg.len());
    for (e, g) in re.iter().zip(&rg) {
        assert_eq!(e.doc, g.doc);
        assert_eq!(e.score.to_bits(), g.score.to_bits());
    }
}

fn check_roundtrip(tag: &str, config: IngestConfig) {
    let dir = case_dir(tag);
    let text = corpus();

    // Reference: the plain in-memory replay.
    let reference = replay_tsv(Cursor::new(&text), config.clone()).expect("replay");

    // First durable run drives the file and leaves a checkpoint behind.
    let (first, report) =
        replay_tsv_durable(Cursor::new(&text), config.clone(), &dir).expect("durable replay");
    assert!(!report.snapshot_loaded, "fresh dir must replay the file");
    assert!(report.corpus_ingested, "fresh dir must ingest the corpus");
    assert_pipelines_identical(&reference, &first);
    drop(first);

    // Restart: recovery must come from the snapshot alone, not the file.
    let (recovered, report) =
        replay_tsv_durable(Cursor::new(&text), config, &dir).expect("recovery");
    assert!(report.snapshot_loaded, "restart must load the snapshot");
    assert!(!report.corpus_ingested, "restart must not re-read the file");
    assert_eq!(report.wal_ticks_replayed, 0, "checkpoint compacted the WAL");
    assert_pipelines_identical(&reference, &recovered);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_replay_equals_plain_replay() {
    check_roundtrip("default", IngestConfig::default());
}

#[test]
fn durable_replay_equals_plain_replay_tfidf() {
    // TF-IDF scoring depends on global collection statistics, so any
    // divergence in the recovered tensor shows up in the score bits.
    let config = IngestConfig {
        engine: EngineConfig::builder().relevance(Relevance::TfIdf).build(),
        ..IngestConfig::default()
    };
    check_roundtrip("tfidf", config);
}

#[test]
fn zero_tick_snapshot_of_pristine_pipeline_still_ingests() {
    // A checkpoint taken on a completely fresh pipeline (no streams, no
    // terms, no commits) leaves a zero-tick snapshot behind. The store
    // holds no state worth preferring, so a durable replay must still
    // drive the file instead of silently returning an empty pipeline.
    let dir = case_dir("zero-tick-pristine");
    {
        let (mut pipeline, _) =
            IngestPipeline::durable(IngestConfig::default(), &dir).expect("open");
        pipeline.checkpoint().expect("pristine checkpoint");
    }
    let text = corpus();
    let reference = replay_tsv(Cursor::new(&text), IngestConfig::default()).expect("replay");
    let (ingested, report) = replay_tsv_durable(Cursor::new(&text), IngestConfig::default(), &dir)
        .expect("durable replay over pristine snapshot");
    assert!(report.snapshot_loaded);
    assert!(
        report.corpus_ingested,
        "pristine store must ingest the file"
    );
    assert_pipelines_identical(&reference, &ingested);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_tick_snapshot_with_state_skips_file_and_reports_it() {
    // A zero-tick snapshot can still hold real state: streams registered
    // and documents staged before the first commit. Re-driving the file on
    // top would duplicate streams, so the file is skipped — and the report
    // says so, instead of leaving the caller to guess why the corpus is
    // missing.
    let dir = case_dir("zero-tick-staged");
    {
        let (mut pipeline, _) =
            IngestPipeline::durable(IngestConfig::default(), &dir).expect("open");
        let s = pipeline.add_stream("staged-only", stb_geo::GeoPoint::new(2.0, 3.0));
        let term = pipeline.intern("quake");
        pipeline.stage_document(s, std::collections::HashMap::from([(term, 4)]));
        pipeline.checkpoint().expect("mid-stage checkpoint");
    }
    let (recovered, report) =
        replay_tsv_durable(Cursor::new(corpus()), IngestConfig::default(), &dir)
            .expect("recovery over staged-only snapshot");
    assert!(report.snapshot_loaded);
    assert!(
        !report.corpus_ingested,
        "staged state must win over the file"
    );
    assert_eq!(recovered.ticks_committed(), 0);
    assert_eq!(
        recovered.collection().n_streams(),
        1,
        "no duplicate streams"
    );
    assert_eq!(recovered.metrics().staged_docs, 1, "staged doc survives");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_replay_prefers_store_over_file() {
    // A store seeded from a 6-tick corpus, then opened against a longer
    // 12-tick file: the recovered state wins, the file is not re-read.
    // (Resuming the remaining ticks is the caller's decision, via the
    // staging API — re-driving the file would double-count documents.)
    let dir = case_dir("prefer-store");
    let mut short = String::from("C\t6\n");
    short.push_str("S\t0\tA\t0\t0\t0\t0\n");
    short.push_str("S\t1\tB\t1\t1\t1\t1\n");
    for ts in 0..6 {
        short.push_str(&format!(
            "D\t0\t{ts}\tquake:{}\n",
            if ts >= 4 { 25 } else { 1 }
        ));
    }
    let reference = replay_tsv(Cursor::new(&short), IngestConfig::default()).expect("replay");
    {
        let (pipeline, _) = replay_tsv_durable(Cursor::new(&short), IngestConfig::default(), &dir)
            .expect("seed store");
        drop(pipeline);
    }
    let (recovered, report) =
        replay_tsv_durable(Cursor::new(corpus()), IngestConfig::default(), &dir)
            .expect("recovery against longer file");
    assert!(report.snapshot_loaded);
    assert_eq!(recovered.ticks_committed(), 6, "file must not be re-driven");
    assert_pipelines_identical(&reference, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
