//! Subscription-stream equivalence property tests: replaying the diff
//! stream of a standing subscription must reconstruct **exactly** the
//! point-in-time result sequence a caller would have seen by querying the
//! serving front fresh after every commit — every score `f64::to_bits`
//! identical, every membership change accounted for.
//!
//! The writer commits a generated plan tick by tick and records, per
//! subscribed query, the fresh response at each published generation.
//! Afterwards each subscription's drained diff stream is replayed:
//!
//! * a delivered diff's `previous` must equal the replayed state (the
//!   stream chains — nothing lost, nothing reordered),
//! * its `current` must be bit-identical to the fresh response recorded at
//!   that tick, under the generation recorded at that tick,
//! * ticks with **no** delivered diff must have left the fresh response
//!   bit-identical to the replayed state (unchanged-suppression and
//!   dirty-term skipping may only elide no-ops).
//!
//! Swept per case: both miners (`STLocal`/`STComb`), spatiotemporal
//! filters on and off (the subscribed set mixes unfiltered, time-window,
//! region, and relevance-override queries), coalescing off (`Block`
//! channels sized to hold every diff).

use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashMap;

use stb_core::{STCombConfig, STLocalConfig};
use stb_corpus::{StreamId, TermId};
use stb_geo::{GeoPoint, Rect};
use stb_ingest::{
    IngestConfig, IngestPipeline, MinerKind, OverflowPolicy, Query, SubscriptionOptions,
};
use stb_search::{Relevance, SearchResult};

const N_STREAMS: usize = 3;
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One tick's documents: (stream index, [(term index, count)]).
type TickSpec = Vec<(usize, Vec<(usize, u32)>)>;

fn arb_plan() -> impl Strategy<Value = Vec<TickSpec>> {
    let count = (proptest::bool::ANY, 0u32..25)
        .prop_map(|(burst, c)| if burst { 15 + c } else { 1 + c % 2 });
    let doc = (
        0..N_STREAMS,
        prop::collection::vec((0..TERMS.len(), count), 1..3),
    );
    let tick = prop::collection::vec(doc, 0..4);
    prop::collection::vec(tick, 2..8)
}

fn stream_geo(s: usize) -> GeoPoint {
    match s {
        0 => GeoPoint::new(0.0, 0.0),
        1 => GeoPoint::new(1.0, 1.0),
        _ => GeoPoint::new(40.0 + s as f64, 40.0),
    }
}

/// The standing queries every case registers: unfiltered, multi-term,
/// time-window, region, and relevance-override shapes.
fn subscription_set(n_ticks: usize) -> Vec<Query> {
    let t: Vec<TermId> = (0..TERMS.len() as u32).map(TermId).collect();
    let mid = n_ticks / 2;
    let near = Rect::new(-0.5, -0.5, 1.5, 1.5);
    vec![
        Query::terms([t[0]]).top_k(5),
        Query::terms([t[1], t[2]]).top_k(4),
        Query::terms(t.iter().copied()).top_k(10),
        Query::terms([t[0], t[3]]).top_k(6).time_window(0..=mid),
        Query::terms([t[1]]).top_k(6).region(near),
        Query::terms([t[0]]).top_k(5).relevance(Relevance::RawFreq),
    ]
}

/// Doc ids and score bits of a result list — the bit-exact comparison key.
type Bits = Vec<(u32, u64)>;

fn bits(results: &[SearchResult]) -> Bits {
    results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

fn check_subscription_stream(plan: &[TickSpec], miner: MinerKind) -> Result<(), TestCaseError> {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: plan.len(),
        miner,
        ..IngestConfig::default()
    });
    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
    for term in TERMS {
        pipeline.intern(term);
    }

    let handle = pipeline.search_handle();
    let queries = subscription_set(plan.len());
    // Coalescing off: Block channels with room for every possible diff, so
    // the stream arrives complete and in commit order.
    let options = SubscriptionOptions::default()
        .capacity(plan.len() + 1)
        .overflow(OverflowPolicy::Block);
    let subs: Vec<_> = queries
        .iter()
        .map(|q| handle.subscribe(q, options))
        .collect::<Result<_, _>>()
        .expect("subscriptions register");
    let baselines: Vec<Bits> = queries
        .iter()
        .map(|q| bits(&handle.query(q).expect("baseline query").results))
        .collect();

    // Commit the plan, recording the fresh per-query response after every
    // publish — the point-in-time sequence the diff streams must encode.
    let mut timeline: Vec<(u64, u64, Vec<Bits>)> = Vec::new();
    for (i, tick) in plan.iter().enumerate() {
        for (stream, bag) in tick {
            let mut counts = HashMap::new();
            for &(term, count) in bag {
                let id = pipeline.intern(TERMS[term]);
                *counts.entry(id).or_insert(0) += count;
            }
            pipeline.stage_document(StreamId(*stream as u32), counts);
        }
        pipeline.commit_tick();
        let generation = handle.generation();
        let fresh = queries
            .iter()
            .map(|q| bits(&handle.query(q).expect("fresh query").results))
            .collect();
        timeline.push((i as u64, generation, fresh));
    }

    // Replay every subscription's diff stream against the recorded
    // sequence.
    for (qi, sub) in subs.iter().enumerate() {
        let diffs = sub.drain();
        prop_assert_eq!(sub.coalesced(), 0, "query {}: Block never coalesces", qi);
        prop_assert_eq!(sub.dropped(), 0, "query {}: Block never drops", qi);
        let mut state = baselines[qi].clone();
        let mut stream = diffs.iter().peekable();
        for (tick, generation, fresh) in &timeline {
            if stream.peek().is_some_and(|d| d.tick == Some(*tick)) {
                let diff = stream.next().expect("peeked diff");
                prop_assert_eq!(diff.coalesced, 0, "query {}: per-diff merge count", qi);
                prop_assert_eq!(
                    &diff.generation,
                    generation,
                    "query {}: tick {} generation",
                    qi,
                    tick
                );
                prop_assert_eq!(
                    bits(&diff.previous),
                    state,
                    "query {}: tick {} chains from the replayed state",
                    qi,
                    tick
                );
                // Membership deltas must agree with the two full lists.
                let entered = diff
                    .current
                    .iter()
                    .filter(|r| diff.previous.iter().all(|p| p.doc != r.doc))
                    .count();
                let left = diff
                    .previous
                    .iter()
                    .filter(|p| diff.current.iter().all(|r| r.doc != p.doc))
                    .count();
                prop_assert_eq!(diff.entered.len(), entered, "query {}: entered", qi);
                prop_assert_eq!(diff.left.len(), left, "query {}: left", qi);
                state = bits(&diff.current);
            }
            prop_assert_eq!(
                &state,
                &fresh[qi],
                "query {}: tick {} replayed state must match the fresh response",
                qi,
                tick
            );
        }
        prop_assert!(
            stream.next().is_none(),
            "query {}: diff stream has no tick beyond the plan",
            qi
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn diff_stream_replays_to_fresh_queries_stlocal(plan in arb_plan()) {
        check_subscription_stream(&plan, MinerKind::STLocal(STLocalConfig::default()))?;
    }

    #[test]
    fn diff_stream_replays_to_fresh_queries_stcomb(plan in arb_plan()) {
        check_subscription_stream(&plan, MinerKind::STComb(STCombConfig::default()))?;
    }
}

/// Regression: a query repeating a term must behave identically to the
/// deduplicated query on **both** live paths — `query()` (planning, cache
/// identity, explanations) and `subscribe()` (registration identity and
/// the diff stream itself). Duplicates used to double-count the repeated
/// term's relevance×burstiness factor in Eq. 10.
#[test]
fn duplicate_terms_are_equivalent_through_query_and_subscribe() {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: 20,
        ..IngestConfig::default()
    });
    for s in 0..N_STREAMS {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s));
    }
    let alpha = pipeline.intern("alpha");
    let beta = pipeline.intern("beta");

    let handle = pipeline.search_handle();
    let once = Query::terms([alpha]).top_k(8);
    let thrice = Query::terms([alpha, alpha, alpha]).top_k(8);
    let sub_once = handle
        .subscribe(&once, SubscriptionOptions::default().capacity(16))
        .expect("subscribe deduplicated");
    let sub_thrice = handle
        .subscribe(&thrice, SubscriptionOptions::default().capacity(16))
        .expect("subscribe with duplicates");
    assert_eq!(
        sub_once.key(),
        sub_thrice.key(),
        "registration identity ignores repetition"
    );

    for tick in 0..20u32 {
        for s in 0..N_STREAMS {
            let mut counts = HashMap::new();
            // A mid-timeline burst on the close pair of streams so mining
            // produces patterns and the standing queries change state.
            let bursting = (8..11).contains(&tick) && s < 2;
            counts.insert(alpha, if bursting { 25 } else { 1 });
            counts.insert(beta, 2);
            pipeline.stage_document(StreamId(s as u32), counts);
        }
        pipeline.commit_tick();

        let r_once = handle.query(&once).expect("deduplicated query");
        let r_thrice = handle.query(&thrice).expect("duplicate query");
        assert_eq!(bits(&r_once.results), bits(&r_thrice.results));
        assert_eq!(r_once.stats.terms, r_thrice.stats.terms);
    }

    // The two diff streams are the same stream.
    let d_once = sub_once.drain();
    let d_thrice = sub_thrice.drain();
    assert!(!d_once.is_empty(), "commits produced diffs");
    assert_eq!(d_once.len(), d_thrice.len());
    for (a, b) in d_once.iter().zip(&d_thrice) {
        assert_eq!(a.tick, b.tick);
        assert_eq!(bits(&a.current), bits(&b.current));
    }

    // Explanations carry one entry per *distinct* term.
    let explained = handle
        .query(&Query::terms([alpha, alpha]).top_k(3).explain(true))
        .expect("explained query");
    assert!(!explained.explanations.is_empty());
    for exp in &explained.explanations {
        assert_eq!(exp.terms.len(), 1, "one factor per distinct term");
    }

    // Cache identity: the duplicate form hits the entry the deduplicated
    // form populated (and vice versa) instead of caching twice.
    let before = handle.metrics();
    let _ = handle.query(&once).expect("warm");
    let between = handle.metrics();
    let _ = handle.query(&thrice).expect("must hit the same entry");
    let after = handle.metrics();
    assert_eq!(
        after.cache_len, between.cache_len,
        "no second cache entry for the duplicate form"
    );
    assert_eq!(after.cache_hits, between.cache_hits + 1);
    assert!(before.cache_capacity > 0, "cache enabled by default");
}
