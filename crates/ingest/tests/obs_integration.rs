//! End-to-end observability: a fully instrumented pipeline must expose a
//! coherent story — slow-query log with span breakdowns and canonical
//! keys, sampled commit traces, histogram-backed health, and a Prometheus
//! / JSON exposition surface an operator could actually scrape.

use std::collections::HashMap;
use std::time::Duration;

use stb_core::STLocalConfig;
use stb_corpus::TermId;
use stb_geo::GeoPoint;
use stb_ingest::{
    IngestConfig, IngestPipeline, MinerKind, PipelineObs, PipelineObsConfig, Query, SearchObsConfig,
};
use stb_obs::SpanKind;

const TERMS: [&str; 4] = ["flood", "quake", "storm", "calm"];

/// A pipeline with a few committed ticks and an attached [`PipelineObs`]
/// whose slow-query threshold is zero — every query is "slow", so the
/// test can seed the slow log deterministically.
fn instrumented_pipeline() -> (IngestPipeline, std::sync::Arc<PipelineObs>, Vec<TermId>) {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: 16,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        cache_capacity: 64,
        ..IngestConfig::default()
    });
    let obs = PipelineObs::new(&PipelineObsConfig {
        search: SearchObsConfig {
            trace_sample_every: 1,
            slow_query_threshold: Duration::ZERO,
            ..SearchObsConfig::default()
        },
        commit_sample_every: 1,
        ..PipelineObsConfig::default()
    });
    pipeline.attach_obs(&obs);
    let streams = [
        pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
        pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
        pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
    ];
    let terms: Vec<TermId> = TERMS.iter().map(|t| pipeline.intern(t)).collect();
    for tick in 0..8 {
        let hot = terms[tick % terms.len()];
        for (i, &s) in streams.iter().enumerate() {
            let f = if i < 2 { 20 } else { 1 };
            pipeline.stage_document(s, HashMap::from([(hot, f), (terms[3], 1)]));
        }
        pipeline.commit_tick();
    }
    (pipeline, obs, terms)
}

#[test]
fn slow_query_log_captures_seeded_query_with_span_breakdown() {
    let (pipeline, obs, terms) = instrumented_pipeline();
    let handle = pipeline.search_handle();

    // Seed one cold (cache-miss) windowed query and repeat it for a hit.
    let query = Query::terms([terms[0], terms[2]])
        .top_k(5)
        .time_window(1..=6);
    handle.query(&query).expect("seeded query");
    handle.query(&query).expect("repeat query");

    let slow = obs.search().slow_log().snapshot();
    assert_eq!(slow.len(), 2, "threshold zero logs every query");

    // The canonical key: sorted term ids, k, and the window — exactly the
    // identity the result cache and invalidation operate on.
    let mut sorted = [terms[0].0, terms[2].0];
    sorted.sort_unstable();
    let expect_key = format!("terms=[{},{}] k=5 window=1..=6", sorted[0], sorted[1]);
    let cold = &slow[0];
    assert_eq!(cold.key, expect_key, "canonical key in the slow log");
    assert!(cold.total_ns > 0, "slow records carry the total latency");

    // The cold query's span breakdown walks the full evaluation path, in
    // order, and the spans sum to the recorded total.
    let kinds: Vec<SpanKind> = cold.spans.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::Plan,
            SpanKind::CacheLookup,
            SpanKind::ShardGather,
            SpanKind::TaScan,
            SpanKind::Respond,
        ],
        "cold query span breakdown"
    );
    let span_sum: u64 = cold.spans.iter().map(|s| s.duration_ns).sum();
    assert!(
        span_sum <= cold.total_ns,
        "spans nest within the total ({span_sum} > {})",
        cold.total_ns
    );
    let stats: HashMap<&str, u64> = cold.stats.iter().map(|&(k, v)| (k, v)).collect();
    assert_eq!(stats["cache_hit"], 0);
    assert_eq!(stats["terms"], 2);
    assert_eq!(stats["filtered"], 1);
    assert!(stats["postings_scanned"] > 0, "cold queries scan postings");

    // The repeat is a cache hit: shorter span walk, hit flagged.
    let hit = &slow[1];
    assert_eq!(hit.key, expect_key);
    let kinds: Vec<SpanKind> = hit.spans.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![SpanKind::Plan, SpanKind::CacheLookup, SpanKind::Respond],
        "cache-hit span breakdown"
    );
    let stats: HashMap<&str, u64> = hit.stats.iter().map(|&(k, v)| (k, v)).collect();
    assert_eq!(stats["cache_hit"], 1);
}

#[test]
fn commit_traces_and_health_are_histogram_backed() {
    let (pipeline, obs, _) = instrumented_pipeline();

    // Every commit was sampled (sample_every = 1): ephemeral commits span
    // apply -> mine -> publish, with no WAL stage.
    let traces = obs.commit_traces();
    assert_eq!(traces.len(), 8, "one sampled trace per commit");
    for trace in &traces {
        let kinds: Vec<SpanKind> = trace.spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::ApplyDocs, SpanKind::Mine, SpanKind::Publish],
            "ephemeral commit span breakdown"
        );
    }

    // Health is served from the same histogram the registry exports.
    let health = pipeline.health();
    assert_eq!(health.uptime_ticks, 8);
    assert!(health.last_commit_ms >= 0.0);
    assert!(
        health.commit_p99_ms.is_some(),
        "attached obs backs commit_p99_ms"
    );
    let snap = obs.snapshot();
    let hist = snap
        .histogram("ingest_commit_ns")
        .expect("commit histogram");
    assert_eq!(hist.count(), 8);
    assert_eq!(
        health.commit_p99_ms.map(f64::to_bits),
        Some((hist.p99() as f64 / 1e6).to_bits()),
        "health p99 is exactly the registry histogram's p99"
    );
}

#[test]
fn exposition_renders_prometheus_and_json() {
    let (pipeline, obs, terms) = instrumented_pipeline();
    let handle = pipeline.search_handle();
    handle
        .query(&Query::terms([terms[0]]).top_k(3))
        .expect("query");

    let prom = obs.registry().render_prometheus();
    for needle in [
        "# TYPE ingest_commits_total counter",
        "ingest_commits_total 8",
        "# TYPE search_query_ns summary",
        "search_query_ns{quantile=\"0.99\"}",
        "search_query_ns_count 1",
        "# TYPE ingest_durability_state gauge",
        "ingest_durability_state 0",
    ] {
        assert!(
            prom.contains(needle),
            "prometheus exposition missing {needle:?}:\n{prom}"
        );
    }

    let json = obs.registry().render_json();
    for needle in [
        "\"ingest_commits_total\":8",
        "\"search_query_ns\":{\"count\":1,",
        "\"p99\":",
        "\"ingest_durability_state\":0",
    ] {
        assert!(
            json.contains(needle),
            "json exposition missing {needle:?}:\n{json}"
        );
    }
}
