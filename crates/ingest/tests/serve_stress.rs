//! Snapshot-consistency stress test for the lock-free serving tier.
//!
//! Eight reader threads hammer a [`SearchHandle`] while the writer commits
//! ticks as fast as it can. The test pins down the three properties the
//! epoch-swap design promises:
//!
//! 1. **No torn generations.** Every query bracketed by two identical
//!    `generation()` reads must return results bit-identical to a
//!    single-threaded reference engine holding exactly that generation's
//!    state — never a mix of two generations.
//! 2. **Monotonicity.** The generation a reader observes never decreases.
//! 3. **Counter reconciliation.** At quiesce, the handle's
//!    `EngineMetrics` cache counters equal the per-thread tallies of
//!    `QueryStats::cache_hit`: no concurrent query is lost or
//!    double-counted.
//!
//! The whole run executes with a [`PipelineObs`] attached, so the
//! registry's `search_query_ns` histogram and query counters must also
//! reconcile exactly with the per-thread tallies at quiesce — the
//! lock-free recording path loses nothing under 8-way contention either.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use stb_core::STLocalConfig;
use stb_corpus::TermId;
use stb_geo::{GeoPoint, Rect};
use stb_ingest::{
    IngestConfig, IngestPipeline, MinerKind, PatternDelta, PipelineObs, PipelineObsConfig, Query,
};
use stb_search::{BurstySearchEngine, EngineConfig, SearchResult};

const N_READERS: usize = 8;
const N_TICKS: usize = 60;
const TERMS: [&str; 4] = ["flood", "quake", "storm", "calm"];

/// Query-set results packed for bit-exact comparison.
type Packed = Vec<Vec<(u32, u64)>>;

/// A reader's recording of one bracketed query: (generation, query index,
/// packed results).
type Bracketed = (u64, usize, Vec<(u32, u64)>);

fn pack(results: &[SearchResult]) -> Vec<(u32, u64)> {
    results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

/// Non-vacuous queries only: every execution performs exactly one cache
/// lookup, so hits + misses must reconcile with the number of calls.
fn query_set() -> Vec<Query> {
    let t: Vec<TermId> = (0..TERMS.len() as u32).map(TermId).collect();
    vec![
        Query::terms([t[0]]).top_k(5),
        Query::terms([t[1], t[2]]).top_k(4),
        Query::terms(t.iter().copied()).top_k(8),
        Query::terms([t[3]]).top_k(3),
        Query::terms([t[0], t[2]]).top_k(6).time_window(5..=40),
        Query::terms([t[1]])
            .top_k(6)
            .region(Rect::new(-0.5, -0.5, 1.5, 1.5)),
    ]
}

#[test]
fn readers_never_observe_torn_generations_and_counters_reconcile() {
    let engine_config = EngineConfig::default();
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: N_TICKS,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: engine_config,
        cache_capacity: 64,
        n_shards: 8,
        ..IngestConfig::default()
    });

    // The reference engine mirrors the pipeline's write side exactly,
    // starting from the same empty pre-stream snapshot generation 1 serves.
    let mut reference = BurstySearchEngine::new(pipeline.collection(), engine_config);
    reference.set_cache_capacity(0);
    reference.finalize_with_threads(1);

    // Full observability attached for the whole run: the stress doubles as
    // the no-lost-observations proof for the registry's recording path.
    let obs = PipelineObs::new(&PipelineObsConfig::default());
    pipeline.attach_obs(&obs);

    let streams = [
        pipeline.add_stream("A", GeoPoint::new(0.0, 0.0)),
        pipeline.add_stream("B", GeoPoint::new(1.0, 1.0)),
        pipeline.add_stream("C", GeoPoint::new(50.0, 50.0)),
    ];
    let terms: Vec<TermId> = TERMS.iter().map(|t| pipeline.intern(t)).collect();

    let queries = query_set();
    let handle = pipeline.search_handle();

    // Per-generation reference results, filled by the writer; readers only
    // read it after the writer is done (they record, then the main thread
    // verifies).
    let references: Mutex<HashMap<u64, Packed>> = Mutex::new(HashMap::new());
    references.lock().unwrap().insert(
        handle.generation(),
        queries
            .iter()
            .map(|q| pack(&reference.query(q).expect("reference query").results))
            .collect(),
    );

    let done = AtomicBool::new(false);
    let (recordings, tallies) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for reader_id in 0..N_READERS {
            let h = handle.clone();
            let q = &queries;
            let done_ref = &done;
            readers.push(scope.spawn(move || {
                // (generation, query index, packed results) for every
                // bracketed query; (hits, misses) tallied from QueryStats.
                let mut seen: Vec<Bracketed> = Vec::new();
                let mut hits = 0u64;
                let mut misses = 0u64;
                let mut last_generation = 0u64;
                let mut i = reader_id; // desynchronize the threads
                loop {
                    let finished = done_ref.load(Ordering::SeqCst);
                    let idx = i % q.len();
                    let g1 = h.generation();
                    let response = h.query(&q[idx]).expect("stress queries are valid");
                    let g2 = h.generation();
                    assert!(g1 >= last_generation, "generation went backwards");
                    assert!(g2 >= g1, "generation went backwards mid-query");
                    last_generation = g2;
                    if response.stats.cache_hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    if g1 == g2 {
                        seen.push((g1, idx, pack(&response.results)));
                    }
                    i += 1;
                    if finished {
                        return (seen, hits, misses);
                    }
                }
            }));
        }

        // Writer: commit ticks with rotating dirty sets (bursts move across
        // terms) so cache invalidation and shard rebuilds churn constantly.
        for tick in 0..N_TICKS {
            let hot = terms[tick % terms.len()];
            let quiet = terms[(tick + 1) % terms.len()];
            for (i, &s) in streams.iter().enumerate() {
                let f = if i < 2 { 25 } else { 1 };
                pipeline.stage_document(s, HashMap::from([(hot, f), (quiet, 1)]));
            }
            let receipt = pipeline.commit_tick();
            reference.update_collection(pipeline.collection(), &receipt.new_docs);
            for delta in &receipt.deltas {
                match delta {
                    PatternDelta::Regional { term, patterns } => {
                        reference.set_patterns(*term, patterns);
                    }
                    PatternDelta::Combinatorial { term, patterns } => {
                        reference.set_patterns(*term, patterns);
                    }
                }
            }
            references.lock().unwrap().insert(
                handle.generation(),
                queries
                    .iter()
                    .map(|q| pack(&reference.query(q).expect("reference query").results))
                    .collect(),
            );
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);

        let mut recordings = Vec::new();
        let mut tallies = (0u64, 0u64, 0u64);
        for reader in readers {
            let (seen, hits, misses) = reader.join().expect("reader thread");
            tallies.0 += hits;
            tallies.1 += misses;
            tallies.2 += seen.len() as u64;
            recordings.extend(seen);
        }
        (recordings, tallies)
    });

    // Every commit published exactly one generation (plus the initial one).
    assert_eq!(handle.generation(), N_TICKS as u64 + 1);

    // 1. No torn generations: every bracketed query matches the reference
    //    for exactly the generation it observed.
    let references = references.lock().unwrap();
    assert!(!recordings.is_empty(), "readers must have run");
    for (generation, idx, packed) in &recordings {
        let expect = references
            .get(generation)
            .unwrap_or_else(|| panic!("generation {generation} was never published"));
        assert_eq!(
            &expect[*idx], packed,
            "torn read: query {idx} at generation {generation} \
             diverged from the single-threaded reference"
        );
    }

    // 3. Counter reconciliation at quiesce: the handle's cache counters
    //    equal the per-thread QueryStats tallies exactly — nothing lost to
    //    the concurrent recording, nothing double-counted.
    let (hits, misses, bracketed) = tallies;
    let metrics = handle.metrics();
    assert_eq!(metrics.cache_hits, hits, "cache_hits must reconcile");
    assert_eq!(metrics.cache_misses, misses, "cache_misses must reconcile");
    assert_eq!(
        metrics.cache_hits + metrics.cache_misses,
        hits + misses,
        "every query performed exactly one cache lookup"
    );
    assert!(
        bracketed > 0,
        "at least some queries must be generation-bracketed"
    );

    // The registry reconciles too: its histogram saw every query exactly
    // once, and its adopted counter cells are the very cells the handle's
    // metrics read, so hits/misses agree with the QueryStats tallies.
    let snap = obs.snapshot();
    let recorded = snap
        .histogram("search_query_ns")
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(
        recorded,
        hits + misses,
        "search_query_ns must record every concurrent query exactly once"
    );
    assert_eq!(
        snap.counter("search_queries_total"),
        Some(hits + misses),
        "search_queries_total must reconcile"
    );
    assert_eq!(
        snap.counter("search_cache_hits"),
        Some(hits),
        "registry cache_hits must reconcile"
    );
    assert_eq!(
        snap.counter("search_cache_misses"),
        Some(misses),
        "registry cache_misses must reconcile"
    );
    assert_eq!(
        snap.counter("ingest_commits_total"),
        Some(N_TICKS as u64),
        "every commit recorded"
    );

    // Quiesced: the final generation still answers bit-identically.
    for (i, q) in queries.iter().enumerate() {
        let got = pack(&handle.query(q).expect("final query").results);
        let expect = &references[&handle.generation()][i];
        assert_eq!(expect, &got, "quiesced query {i} diverged");
    }
}
