//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset this workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline it runs a fixed
//! warmup + timed sample loop and reports mean / best wall-clock time per
//! iteration on stdout. That keeps `cargo bench` functional (and
//! `cargo bench --no-run` compiling) with zero dependencies; swap the
//! workspace `criterion` entry for the real crate to get rigorous numbers.
//!
//! Environment knobs: `STB_BENCH_SAMPLES` overrides the per-benchmark sample
//! count (default 10); `STB_BENCH_FILTER` skips benchmarks whose id does not
//! contain the given substring (mirroring `cargo bench -- <filter>`, which
//! also works).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn full(&self, group: &str) -> String {
        match (group.is_empty(), self.function_name.is_empty()) {
            (true, _) => format!("{}/{}", self.function_name, self.parameter),
            (_, true) => format!("{}/{}", group, self.parameter),
            _ => format!("{}/{}/{}", group, self.function_name, self.parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and best per-iteration time of the measured samples.
    measured: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine`, running `samples` measured batches after warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and batch sizing: aim for batches of at least ~1ms so the
        // Instant overhead stays negligible for fast routines.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 10_000) as usize;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed() / per_batch as u32;
            total += elapsed;
            best = best.min(elapsed);
        }
        self.measured = Some((total / self.samples as u32, best));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    match nanos {
        0..=9_999 => format!("{nanos} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", nanos as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", nanos as f64 / 1e6),
        _ => format!("{:.2} s", nanos as f64 / 1e9),
    }
}

fn default_samples() -> usize {
    std::env::var("STB_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10usize)
        .max(1)
}

fn filter() -> Option<String> {
    if let Ok(f) = std::env::var("STB_BENCH_FILTER") {
        return Some(f);
    }
    // `cargo bench -- <filter>` passes the filter as a CLI argument; ignore
    // flag-like arguments (e.g. --bench) that cargo also forwards.
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filt) = filter() {
        if !id.contains(&filt) {
            return;
        }
    }
    let mut b = Bencher {
        samples,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((mean, best)) => println!(
            "bench: {id:<50} mean {:>12}   best {:>12}",
            fmt_duration(mean),
            fmt_duration(best)
        ),
        None => println!("bench: {id:<50} (no measurement recorded)"),
    }
}

/// Top-level harness handle, one per bench target.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.samples, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples,
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = id.full(&self.name);
        run_one(&full, self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher {
            samples: 3,
            measured: None,
        };
        b.iter(|| black_box(41 + 1));
        let (mean, best) = b.measured.expect("iter records timing");
        assert!(best <= mean);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("mine_term", 500);
        assert_eq!(id.full("stcomb"), "stcomb/mine_term/500");
        let id = BenchmarkId::from_parameter(7);
        assert_eq!(id.full("grp"), "grp/7");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { samples: 2 };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
