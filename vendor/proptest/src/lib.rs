//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`arg in strategy` syntax),
//! * [`Strategy`] for numeric ranges, tuples of strategies, and
//!   [`Strategy::prop_map`],
//! * [`collection::vec`] and [`bool::ANY`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning structured failures.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build: no shrinking (failures report the case number and seed instead of
//! a minimal counterexample) and a fixed deterministic seed per test name,
//! so CI runs are exactly reproducible. Case count defaults to 256 and can
//! be overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Error produced by a failed `prop_assert!` family macro.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`: `Some` three times out of four,
    /// mirroring the real crate's default `Some` weight.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4) == 0 {
                None
            } else {
                Some(self.element.new_value(rng))
            }
        }
    }
}

/// Length range for collection strategies (half-open internally).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `true` / `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Number of cases each property runs: `PROPTEST_CASES` env var, default 256.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Run one property `cases` times with a per-test deterministic RNG.
///
/// The seed is derived only from the test name, so failures reproduce
/// exactly across runs and machines ("pinned seeds" in CI).
pub fn run_cases(test_name: &str, mut case: impl FnMut(&mut StdRng) -> TestCaseResult) {
    // FNV-1a over the test name gives a stable per-test seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let cases = case_count();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property `{test_name}` failed at case {i}/{cases} \
                 (seed 0x{seed:016x}): {e}"
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__stb_proptest_rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), __stb_proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // stringify! output goes through an argument, not the format string,
        // so conditions containing braces don't break the format literal.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// Mirror of the real prelude's `prop` module of strategy re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(x < 10);
            prop_assert!((2..6).contains(&v.len()));
            for f in &v {
                prop_assert!((0.0..1.0).contains(f));
            }
        }

        #[test]
        fn tuple_and_prop_map(p in (0i32..5, 10i32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..25).contains(&p));
        }

    }

    #[test]
    fn bool_any_produces_both_values() {
        let mut seen = [false; 2];
        crate::run_cases("bool_any", |rng| {
            let b = crate::Strategy::new_value(&crate::bool::ANY, rng);
            seen[b as usize] = true;
            Ok(())
        });
        assert!(seen[0] && seen[1], "256 draws must produce both booleans");
    }

    #[test]
    fn failures_report_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("doomed", |_rng| Err(crate::TestCaseError::fail("nope")));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("doomed") && msg.contains("case 0") && msg.contains("nope"));
    }

    #[test]
    fn determinism_across_runs() {
        let mut collected = Vec::new();
        for _ in 0..2 {
            let mut vals = Vec::new();
            crate::run_cases("det", |rng| {
                vals.push(crate::Strategy::new_value(&(0u64..1 << 40), rng));
                Ok(())
            });
            collected.push(vals);
        }
        assert_eq!(collected[0], collected[1]);
    }
}
