//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no crates.io access, so
//! this vendored crate implements exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` over half-open and inclusive
//! numeric ranges. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and of ample statistical quality for data generation
//! and benchmarks (it is **not** cryptographically secure, and neither is
//! the real `StdRng` contractually stable across versions).
//!
//! To switch to the real crate, replace the `rand` entry in the workspace
//! `[workspace.dependencies]` with a crates.io version; call sites need no
//! changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`) range.
    ///
    /// Panics if the range is empty, matching the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0.0, 1.0]"
        );
        // Compare against 53 random mantissa bits, like rand's Bernoulli.
        f64::sample_in(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Modulo reduction: bias is < span / 2^64, negligible for the
                // span sizes this workspace draws from.
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                let v = low + (high - low) * unit;
                // Guard against rounding up to `high` at the top of the range.
                if v < high { v } else { low }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f64 => 53, f32 => 24);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Rngs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (same scheme as the
    /// real crate), so small seed integers still produce well-mixed states.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(5usize..=5);
            assert_eq!(inc, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_frequency_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = sample(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }
}
