//! # stburst — spatiotemporal term burstiness
//!
//! A from-scratch Rust implementation of *"On the Spatiotemporal Burstiness
//! of Terms"* (Lappas, Vieira, Gunopulos, Tsotras — VLDB 2012): mining
//! combinatorial (`STComb`) and regional (`STLocal`) spatiotemporal
//! burstiness patterns from geostamped document streams, and using them to
//! power a bursty-document search engine.
//!
//! This facade crate simply re-exports the workspace crates under one roof;
//! see the individual modules for the full documentation:
//!
//! * [`geo`] — geographic primitives, MDS projection, country gazetteer.
//! * [`timeseries`] — temporal burst detection (discrepancy & Kleinberg),
//!   Ruzzo–Tompa maximal segments.
//! * [`corpus`] — documents, streams, spatiotemporal collections.
//! * [`discrepancy`] — max-weight rectangles and the R-Bursty algorithm.
//! * [`core`] — the paper's contribution: STComb, STLocal, baselines,
//!   evaluation metrics.
//! * [`search`] — the bursty-document search engine and its typed
//!   spatiotemporal query DSL (`Query` → `QueryResponse`/`QueryError`).
//! * [`ingest`] — live ingestion: incremental mining, per-term index
//!   deltas, queries served concurrently with document arrival.
//! * [`subscribe`] — continuous queries: standing subscriptions evaluated
//!   incrementally against each tick's dirty terms, delivering result
//!   diffs through bounded channels with configurable overflow policies.
//! * [`store`] — durable snapshots and a write-ahead log: crash recovery
//!   as `load_snapshot + replay_wal`, byte-identical to a process that
//!   never stopped.
//! * [`obs`] — observability: the lock-free metrics registry (counters,
//!   gauges, mergeable latency histograms), span traces, the slow-query
//!   log, and the Prometheus/JSON exposition the instrumented crates
//!   share.
//! * [`datagen`] — synthetic data generators (distGen, randGen, Topix-like
//!   corpus).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stb_core as core;
pub use stb_corpus as corpus;
pub use stb_datagen as datagen;
pub use stb_discrepancy as discrepancy;
pub use stb_geo as geo;
pub use stb_ingest as ingest;
pub use stb_obs as obs;
pub use stb_search as search;
pub use stb_store as store;
pub use stb_subscribe as subscribe;
pub use stb_timeseries as timeseries;
