//! Bursty-document search over a synthetic world-news corpus.
//!
//! ```text
//! cargo run --release --example news_search [query terms...]
//! ```
//!
//! Generates the synthetic Topix-like corpus (181 country streams, 48
//! weeks, the 18 Major Events of the paper), mines STComb patterns for the
//! query terms, and retrieves the top documents with the paper's
//! relevance × burstiness scoring (Section 5). With no arguments the query
//! defaults to "piracy".

use stburst::core::STComb;
use stburst::corpus::TermId;
use stburst::datagen::{TopixConfig, TopixCorpus};
use stburst::search::{BurstySearchEngine, EngineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query_text = if args.is_empty() {
        "piracy".to_string()
    } else {
        args.join(" ")
    };

    println!("Generating the synthetic Topix corpus (181 countries, 48 weeks)...");
    let corpus = TopixCorpus::generate(TopixConfig {
        docs_per_stream_per_week: 2,
        background_vocab: 500,
        ..Default::default()
    });
    let collection = corpus.collection();
    println!(
        "  {} documents, {} distinct terms.\n",
        collection.documents().len(),
        collection.n_terms()
    );

    // Resolve the query against the dictionary.
    let query: Vec<TermId> = query_text
        .split_whitespace()
        .filter_map(|w| collection.dict().get(&w.to_lowercase()))
        .collect();
    if query.is_empty() {
        println!("No query term found in the corpus vocabulary: {query_text:?}");
        return;
    }

    // Mine combinatorial patterns for the query terms in parallel and feed
    // them to the engine wholesale (the miner output implements
    // `PatternSource`).
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mined = STComb::new().mine_collection_parallel(collection, &query, threads);
    for (term, patterns) in &mined {
        println!(
            "term '{}': {} spatiotemporal patterns",
            collection.dict().resolve(*term).unwrap_or("?"),
            patterns.len()
        );
    }
    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    engine.set_patterns_from(&mined);

    // Prebuild the score-sorted posting index so repeated queries only walk
    // prebuilt lists (and, on exact repeats, hit the result cache).
    let t0 = std::time::Instant::now();
    engine.finalize();
    println!("\nPrebuilt posting index in {:.1?}", t0.elapsed());

    // Retrieve the top-10 bursty documents.
    println!("Top documents for query '{query_text}':");
    for (rank, hit) in engine.search(&query, 10).iter().enumerate() {
        let doc = collection.document(hit.doc);
        let country = &collection.stream(doc.stream).name;
        println!(
            "  {:>2}. score {:>8.3}  week {:>2}  {}",
            rank + 1,
            hit.score,
            doc.timestamp,
            country
        );
    }

    // The same query again is a cache hit.
    let t1 = std::time::Instant::now();
    let _ = engine.search(&query, 10);
    println!(
        "\nRepeated query answered in {:.1?} ({} cache hits)",
        t1.elapsed(),
        engine.cache_hits()
    );
}
