//! Bursty-document search over a synthetic world-news corpus.
//!
//! ```text
//! cargo run --release --example news_search [query terms...]
//! ```
//!
//! Generates the synthetic Topix-like corpus (181 country streams, 48
//! weeks, the 18 Major Events of the paper), mines STComb patterns for the
//! query terms, and retrieves the top documents with the paper's
//! relevance × burstiness scoring (Section 5). With no arguments the query
//! defaults to "piracy".

use stburst::core::STComb;
use stburst::corpus::TermId;
use stburst::datagen::{TopixConfig, TopixCorpus};
use stburst::search::{BurstySearchEngine, EngineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query_text = if args.is_empty() {
        "piracy".to_string()
    } else {
        args.join(" ")
    };

    println!("Generating the synthetic Topix corpus (181 countries, 48 weeks)...");
    let corpus = TopixCorpus::generate(TopixConfig {
        docs_per_stream_per_week: 2,
        background_vocab: 500,
        ..Default::default()
    });
    let collection = corpus.collection();
    println!(
        "  {} documents, {} distinct terms.\n",
        collection.documents().len(),
        collection.n_terms()
    );

    // Resolve the query against the dictionary.
    let query: Vec<TermId> = query_text
        .split_whitespace()
        .filter_map(|w| collection.dict().get(&w.to_lowercase()))
        .collect();
    if query.is_empty() {
        println!("No query term found in the corpus vocabulary: {query_text:?}");
        return;
    }

    // Mine combinatorial patterns for each query term and register them.
    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    let miner = STComb::new();
    for &term in &query {
        let patterns = miner.mine_collection(collection, term);
        println!(
            "term '{}': {} spatiotemporal patterns",
            collection.dict().resolve(term).unwrap_or("?"),
            patterns.len()
        );
        engine.set_patterns(term, &patterns);
    }

    // Retrieve the top-10 bursty documents.
    println!("\nTop documents for query '{query_text}':");
    for (rank, hit) in engine.search(&query, 10).iter().enumerate() {
        let doc = collection.document(hit.doc);
        let country = &collection.stream(doc.stream).name;
        println!(
            "  {:>2}. score {:>8.3}  week {:>2}  {}",
            rank + 1,
            hit.score,
            doc.timestamp,
            country
        );
    }
}
