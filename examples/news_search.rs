//! Bursty-document search over a synthetic world-news corpus.
//!
//! ```text
//! cargo run --release --example news_search [query terms...]
//! ```
//!
//! Generates the synthetic Topix-like corpus (181 country streams, 48
//! weeks, the 18 Major Events of the paper), mines STComb patterns for the
//! query terms, and retrieves the top documents with the paper's
//! relevance × burstiness scoring (Section 5). With no arguments the query
//! defaults to "piracy".

use stburst::core::STComb;
use stburst::corpus::TermId;
use stburst::datagen::{TopixConfig, TopixCorpus};
use stburst::search::{BurstySearchEngine, EngineConfig, Query};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query_text = if args.is_empty() {
        "piracy".to_string()
    } else {
        args.join(" ")
    };

    println!("Generating the synthetic Topix corpus (181 countries, 48 weeks)...");
    let corpus = TopixCorpus::generate(TopixConfig {
        docs_per_stream_per_week: 2,
        background_vocab: 500,
        ..Default::default()
    });
    let collection = corpus.collection();
    println!(
        "  {} documents, {} distinct terms.\n",
        collection.documents().len(),
        collection.n_terms()
    );

    // Resolve the query against the dictionary.
    let query: Vec<TermId> = query_text
        .split_whitespace()
        .filter_map(|w| collection.dict().get(&w.to_lowercase()))
        .collect();
    if query.is_empty() {
        println!("No query term found in the corpus vocabulary: {query_text:?}");
        return;
    }

    // Mine combinatorial patterns for the query terms in parallel and feed
    // them to the engine wholesale (the miner output implements
    // `PatternSource`).
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mined = STComb::new().mine_collection_parallel(collection, &query, threads);
    for (term, patterns) in &mined {
        println!(
            "term '{}': {} spatiotemporal patterns",
            collection.dict().resolve(*term).unwrap_or("?"),
            patterns.len()
        );
    }
    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    engine.set_patterns_from(&mined);

    // Prebuild the score-sorted posting index so repeated queries only walk
    // prebuilt lists (and, on exact repeats, hit the result cache).
    let t0 = std::time::Instant::now();
    engine.finalize();
    println!("\nPrebuilt posting index in {:.1?}", t0.elapsed());

    // Retrieve the top-10 bursty documents through the typed query DSL,
    // with per-document explanations of the Eq. 10–11 factors.
    println!("Top documents for query '{query_text}':");
    let typed = Query::terms(query.iter().copied()).top_k(10).explain(true);
    let response = engine.query(&typed).expect("valid query");
    for (rank, (hit, why)) in response
        .results
        .iter()
        .zip(&response.explanations)
        .enumerate()
    {
        let doc = collection.document(hit.doc);
        let country = &collection.stream(doc.stream).name;
        let pattern = why.terms[0].patterns.first();
        println!(
            "  {:>2}. score {:>8.3}  week {:>2}  {}  (pattern {})",
            rank + 1,
            hit.score,
            doc.timestamp,
            country,
            pattern.map_or("-".to_string(), |p| p.interval.to_string()),
        );
    }

    // The canonical spatiotemporal question: the same terms, restricted to
    // the burst window and map region of the top hit's pattern.
    if let Some(top_pattern) = response
        .explanations
        .first()
        .and_then(|e| e.terms[0].patterns.first())
    {
        let (interval, region) = (top_pattern.interval, top_pattern.region);
        let mut focused = Query::terms(query.iter().copied())
            .top_k(10)
            .time_window(interval.start..=interval.end);
        if let Some(rect) = region {
            focused = focused.region(rect);
        }
        let focused_hits = engine.query(&focused).expect("valid query");
        println!(
            "\nRestricted to window {} and the pattern's region: {} documents",
            interval,
            focused_hits.results.len()
        );
    }

    // The same query again is a cache hit.
    let t1 = std::time::Instant::now();
    let again = engine.query(&typed).expect("valid query");
    println!(
        "\nRepeated query answered in {:.1?} (cache hit: {}, {} cache hits total)",
        t1.elapsed(),
        again.stats.cache_hit,
        engine.metrics().cache_hits
    );
}
