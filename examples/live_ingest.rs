//! Live ingestion while serving queries.
//!
//! ```text
//! cargo run --release --example live_ingest
//! ```
//!
//! An ingest thread feeds a five-city corpus into an `IngestPipeline` one
//! tick at a time — an "earthquake" burst erupts in the two Costa Rican
//! cities halfway through — while a second thread keeps answering the
//! query `earthquake` through a `SearchHandle` the whole time. The handle
//! reads immutable generational snapshots, so the query thread never
//! blocks ingestion and always sees a fully consistent tick.

use stburst::corpus::Tokenizer;
use stburst::geo::GeoPoint;
use stburst::ingest::{
    IngestConfig, IngestPipeline, PipelineObs, PipelineObsConfig, Query, UnknownWords,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

const TIMELINE: usize = 30;
const BURST: std::ops::RangeInclusive<usize> = 12..=16;

fn main() {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: TIMELINE,
        ..Default::default()
    });
    // Full observability: every commit and query below lands in this
    // registry's counters and histograms, snapshotted every few ticks.
    let obs = PipelineObs::new(&PipelineObsConfig::default());
    pipeline.attach_obs(&obs);
    let cities = [
        ("San Jose (CR)", 9.9, -84.1),
        ("Alajuela (CR)", 10.0, -84.2),
        ("Lima", -12.0, -77.0),
        ("Athens", 38.0, 23.7),
        ("Tokyo", 35.7, 139.7),
    ];
    let streams: Vec<_> = cities
        .iter()
        .map(|(name, lat, lon)| pipeline.add_stream(name, GeoPoint::new(*lat, *lon)))
        .collect();
    let tokenizer = Tokenizer::new();

    // The query side: a cloneable handle served concurrently with ingest.
    let handle = pipeline.search_handle();
    let stop = AtomicBool::new(false);
    let (tick_tx, tick_rx) = mpsc::channel::<usize>();

    std::thread::scope(|scope| {
        // Query thread: poll the burst query after every committed tick.
        let query_handle = handle.clone();
        let stop_ref = &stop;
        let watcher = scope.spawn(move || {
            let mut answered = 0u64;
            let mut first_hit_tick = None;
            loop {
                match tick_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(tick) => {
                        // Ingest may outpace this thread: drain to the most
                        // recent committed tick so the report attributes the
                        // hit to the state actually being queried.
                        let tick = tick_rx.try_iter().last().unwrap_or(tick);
                        // The burst term may not have been ingested yet, so
                        // unknown words resolve to an empty response rather
                        // than an error.
                        let hits = query_handle
                            .query(
                                &Query::text("earthquake")
                                    .top_k(3)
                                    .unknown_words(UnknownWords::EmptyResponse),
                            )
                            .expect("valid query")
                            .results;
                        answered += 1;
                        if !hits.is_empty() && first_hit_tick.is_none() {
                            first_hit_tick = Some(tick);
                            println!(
                                "[query ] tick {tick:>2}: burst detected, top score {:.2}",
                                hits[0].score
                            );
                        }
                    }
                    Err(_) if stop_ref.load(Ordering::Relaxed) => break,
                    Err(_) => {}
                }
            }
            (answered, first_hit_tick)
        });

        // Ingest thread (here: the main thread) — one tick at a time.
        for day in 0..TIMELINE {
            for &s in &streams {
                pipeline.stage_text_document(s, "weather report sunny", &tokenizer);
            }
            if BURST.contains(&day) {
                for &s in &streams[..2] {
                    pipeline.stage_text_document(
                        s,
                        "earthquake earthquake earthquake damage aftershock earthquake \
                         earthquake earthquake earthquake earthquake",
                        &tokenizer,
                    );
                }
            }
            let receipt = pipeline.commit_tick();
            println!(
                "[ingest] tick {:>2}: {} docs, {} dirty terms re-mined in {:.2} ms",
                receipt.tick,
                receipt.new_docs.len(),
                receipt.deltas.len(),
                receipt.commit_ms
            );
            tick_tx.send(receipt.tick).expect("watcher alive");
            // Periodic metrics snapshot: the same numbers a Prometheus
            // scrape of `obs.registry().render_prometheus()` would see.
            if (day + 1) % 10 == 0 {
                let snap = obs.snapshot();
                let commit = snap
                    .histogram("ingest_commit_ns")
                    .expect("commit histogram");
                println!(
                    "[obs   ] tick {:>2}: {} commits (p50 {:.2} ms, p99 {:.2} ms), \
                     {} queries, {} docs ingested",
                    receipt.tick,
                    snap.counter("ingest_commits_total").unwrap_or(0),
                    commit.p50() as f64 / 1e6,
                    commit.p99() as f64 / 1e6,
                    snap.counter("search_queries_total").unwrap_or(0),
                    snap.counter("ingest_docs_total").unwrap_or(0),
                );
            }
            // Pace the demo so the query thread observes individual ticks
            // (a real feed arrives over time anyway); commits themselves
            // take well under a millisecond.
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let (answered, first_hit_tick) = watcher.join().expect("query thread");
        println!("\nqueries answered during ingest: {answered}");
        match first_hit_tick {
            Some(tick) => println!("burst first visible to queries at tick {tick}"),
            None => println!("burst never became visible (unexpected!)"),
        }
    });

    // Final state: the burst documents rank first.
    println!("\ntop earthquake documents after ingest:");
    let collection = handle.collection();
    let top = handle
        .query(&Query::text("earthquake").top_k(5))
        .expect("term ingested by now")
        .results;
    for (rank, hit) in top.iter().enumerate() {
        let doc = collection.document(hit.doc);
        println!(
            "  {:>2}. score {:>7.3}  day {:>2}  {}",
            rank + 1,
            hit.score,
            doc.timestamp,
            collection.stream(doc.stream).name
        );
    }
    let m = handle.metrics();
    println!(
        "\nengine metrics: {} terms indexed, {} per-term re-scores, {} cache hits / {} misses",
        m.indexed_terms, m.term_rescore_count, m.cache_hits, m.cache_misses
    );

    // The final registry state, as an exporter endpoint would serve it.
    let snap = obs.snapshot();
    let queries = snap.histogram("search_query_ns").expect("query histogram");
    println!(
        "query latency from the registry: p50 {:.1} us, p99 {:.1} us over {} queries",
        queries.p50() as f64 / 1e3,
        queries.p99() as f64 / 1e3,
        queries.count()
    );
    let prom = obs.registry().render_prometheus();
    println!("\nprometheus exposition (first lines):");
    for line in prom.lines().filter(|l| !l.starts_with('#')).take(6) {
        println!("  {line}");
    }
}
