//! Event detection on synthetic data with ground truth: generate a distGen
//! dataset (Appendix B of the paper), inject spatiotemporal patterns, and
//! check how well STComb and STLocal recover them.
//!
//! ```text
//! cargo run --release --example event_detection
//! ```

use stburst::core::{jaccard_similarity, STComb, STCombConfig, STLocal, STLocalConfig};
use stburst::corpus::StreamId;
use stburst::datagen::{GeneratorConfig, PatternGenerator, StreamSelection};

fn main() {
    // A moderate dataset: 40 streams on a 1000x1000 map, 120 timestamps,
    // 8 injected patterns.
    let config = GeneratorConfig {
        n_streams: 40,
        timeline: 120,
        n_terms: 100,
        n_patterns: 8,
        selection: StreamSelection::DistGen {
            decay_fraction: 0.1,
        },
        max_streams_per_pattern: 12,
        seed: 42,
        ..Default::default()
    };
    let dataset = PatternGenerator::generate(config);
    println!(
        "Generated {} streams x {} timestamps with {} injected patterns.\n",
        dataset.n_streams(),
        dataset.timeline(),
        dataset.patterns().len()
    );

    let stcomb = STComb::with_config(STCombConfig {
        min_interval_score: 0.2,
        ..Default::default()
    });

    for (i, truth) in dataset.patterns().iter().enumerate() {
        let truth_streams: Vec<StreamId> =
            truth.streams.iter().map(|&s| StreamId(s as u32)).collect();

        // STComb on this term.
        let series: Vec<(StreamId, Vec<f64>)> = (0..dataset.n_streams())
            .map(|s| (StreamId(s as u32), dataset.series(truth.term, s)))
            .collect();
        let comb = stcomb.mine_series(&series);

        // STLocal on this term (streaming over the snapshots).
        let mut miner = STLocal::new(dataset.positions().to_vec(), STLocalConfig::default());
        for ts in 0..dataset.timeline() {
            miner.step(&dataset.snapshot(truth.term, ts));
        }
        let local = miner.finish();

        println!(
            "pattern {i}: term {} | {} streams | days {}..{}",
            truth.term,
            truth.streams.len(),
            truth.interval.start,
            truth.interval.end
        );
        match comb.first() {
            Some(p) => println!(
                "  STComb : days {}..{}  streams jaccard {:.2}  score {:.2}",
                p.timeframe.start,
                p.timeframe.end,
                jaccard_similarity(&p.streams, &truth_streams),
                p.score
            ),
            None => println!("  STComb : no pattern found"),
        }
        match local.first() {
            Some(p) => println!(
                "  STLocal: days {}..{}  streams jaccard {:.2}  w-score {:.2}",
                p.timeframe.start,
                p.timeframe.end,
                jaccard_similarity(&p.streams, &truth_streams),
                p.score
            ),
            None => println!("  STLocal: no pattern found"),
        }
    }
}
