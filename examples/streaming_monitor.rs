//! Streaming monitoring with STLocal: process snapshots one timestamp at a
//! time (as they would arrive from a live feed) and print an alert whenever
//! a new bursty region appears for the monitored term.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use stburst::core::{STLocal, STLocalConfig};
use stburst::datagen::{GeneratorConfig, PatternGenerator, StreamSelection};
use stburst::obs::ObsRegistry;
use std::time::Instant;

fn main() {
    // Simulated feed: 60 streams, 90 timestamps, a few injected events.
    let config = GeneratorConfig {
        n_streams: 60,
        timeline: 90,
        n_terms: 40,
        n_patterns: 5,
        selection: StreamSelection::DistGen {
            decay_fraction: 0.1,
        },
        max_streams_per_pattern: 15,
        seed: 17,
        ..Default::default()
    };
    let dataset = PatternGenerator::generate(config);
    let term = dataset.patterned_terms()[0];
    println!(
        "Monitoring term {term} over {} streams ({} injected patterns on this term).\n",
        dataset.n_streams(),
        dataset.patterns_of_term(term).len()
    );

    // A standalone metrics registry for the monitor itself: per-step
    // mining latency, alert count, and the tracked-window gauge — the
    // same `stb-obs` surface the serving pipeline exports.
    let registry = ObsRegistry::new();
    let step_ns = registry.histogram("monitor_step_ns");
    let alerts = registry.counter("monitor_alerts_total");
    let open_windows_gauge = registry.gauge("monitor_open_windows");

    let mut miner = STLocal::new(dataset.positions().to_vec(), STLocalConfig::default());
    let mut known_patterns = 0usize;
    for ts in 0..dataset.timeline() {
        // In a real deployment this snapshot would come from the live feed.
        let snapshot = dataset.snapshot(term, ts);
        let started = Instant::now();
        miner.step(&snapshot);
        step_ns.record_duration(started.elapsed());

        let stats = miner.stats();
        let rectangles = stats.rectangles_per_timestamp[ts];
        let open_windows = stats.open_windows_per_timestamp[ts];
        let patterns = miner.patterns();
        if patterns.len() > known_patterns {
            let top = &patterns[0];
            println!(
                "t={ts:>3}  ALERT: {} maximal window(s) tracked (best: {} streams, \
                 window {}..{}, w-score {:.1}) | {} rectangles, {} open windows",
                patterns.len(),
                top.n_streams(),
                top.timeframe.start,
                top.timeframe.end,
                top.score,
                rectangles,
                open_windows
            );
            known_patterns = patterns.len();
            alerts.inc();
        }
        open_windows_gauge.set(open_windows as f64);

        // Periodic metrics snapshot, as a scrape of this registry would
        // report it.
        if (ts + 1) % 30 == 0 {
            let snap = registry.snapshot();
            let h = snap.histogram("monitor_step_ns").expect("step histogram");
            println!(
                "t={ts:>3}  [obs] {} steps (p50 {:.1} us, p99 {:.1} us), {} alerts, \
                 {} open windows",
                h.count(),
                h.p50() as f64 / 1e3,
                h.p99() as f64 / 1e3,
                snap.counter("monitor_alerts_total").unwrap_or(0),
                snap.gauge("monitor_open_windows").unwrap_or(0.0),
            );
        }
    }

    println!("\nFinal report — maximal spatiotemporal windows:");
    for (i, p) in miner.finish().iter().take(8).enumerate() {
        println!(
            "  {:>2}. streams {:?} window {}..{} w-score {:.1}",
            i + 1,
            p.streams.iter().map(|s| s.0).collect::<Vec<_>>(),
            p.timeframe.start,
            p.timeframe.end,
            p.score
        );
    }
    println!("\nGround truth injected on this term:");
    for &pid in dataset.patterns_of_term(term) {
        let p = &dataset.patterns()[pid];
        println!(
            "   streams {:?} window {}..{}",
            p.streams, p.interval.start, p.interval.end
        );
    }
}
