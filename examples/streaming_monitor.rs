//! Streaming monitoring as **standing subscriptions**: register the
//! monitored terms once, drive the live feed through the ingest pipeline
//! tick by tick, and print the result-diff notifications the pipeline
//! pushes whenever a commit actually moves a monitored top-k — entered and
//! departed documents, rank changes, and the re-mined patterns that
//! triggered them. Ticks that do not touch a monitored term cost the
//! subscriptions nothing.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use stburst::datagen::{GeneratorConfig, PatternGenerator, StreamSelection};
use stburst::geo::GeoPoint;
use stburst::ingest::{IngestConfig, IngestPipeline, Query};
use stburst::subscribe::{OverflowPolicy, SubscriptionOptions};
use std::collections::HashMap;

fn main() {
    // Simulated feed: 60 streams, 90 timestamps, a few injected events.
    let config = GeneratorConfig {
        n_streams: 60,
        timeline: 90,
        n_terms: 40,
        n_patterns: 5,
        selection: StreamSelection::DistGen {
            decay_fraction: 0.1,
        },
        max_streams_per_pattern: 15,
        seed: 17,
        ..Default::default()
    };
    let dataset = PatternGenerator::generate(config);
    let monitored: Vec<usize> = dataset.patterned_terms().into_iter().take(3).collect();

    // A live pipeline over the generator's streams (keeping its planar
    // positions, so mined footprints line up with the ground truth).
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: dataset.timeline(),
        ..Default::default()
    });
    for (s, pos) in dataset.positions().iter().enumerate() {
        pipeline.add_stream_with_position(&format!("stream{s}"), GeoPoint::new(0.0, 0.0), *pos);
    }
    let term_ids: Vec<_> = (0..40)
        .map(|t| pipeline.intern(&format!("term{t}")))
        .collect();

    // One standing subscription per monitored term. `CoalesceLatest` means
    // a monitor that falls behind converges to the newest state instead of
    // blocking the committer or losing track of how much it merged away.
    let handle = pipeline.search_handle();
    let subs: Vec<_> = monitored
        .iter()
        .map(|&t| {
            handle
                .subscribe(
                    &Query::terms([term_ids[t]]).top_k(5),
                    SubscriptionOptions::default()
                        .capacity(8)
                        .overflow(OverflowPolicy::CoalesceLatest),
                )
                .expect("register standing query")
        })
        .collect();
    println!(
        "Monitoring terms {:?} over {} streams via {} standing subscriptions.\n",
        monitored,
        dataset.n_streams(),
        subs.len()
    );

    for ts in 0..dataset.timeline() {
        // In a real deployment these documents would come from the feed.
        for &t in &monitored {
            let freqs = dataset.snapshot(t, ts);
            for (s, &f) in freqs.iter().enumerate() {
                let count = f.round() as u32;
                if count > 0 {
                    pipeline.stage_document(
                        stburst::corpus::StreamId(s as u32),
                        HashMap::from([(term_ids[t], count)]),
                    );
                }
            }
        }
        pipeline.commit_tick();

        // Print whatever the commit pushed: only subscriptions whose term
        // was dirty *and* whose top-5 actually changed deliver anything.
        for (&t, sub) in monitored.iter().zip(&subs) {
            for diff in sub.drain() {
                let best = diff
                    .current
                    .first()
                    .map(|r| format!("doc {} ({:.2})", r.doc.0, r.score))
                    .unwrap_or_else(|| "none".to_string());
                let patterns: usize = diff.triggers.iter().map(|tr| tr.patterns.len()).sum();
                println!(
                    "t={ts:>3}  term {t}: gen {} | +{} -{} ~{} | best {} | {} trigger pattern(s){}",
                    diff.generation,
                    diff.entered.len(),
                    diff.left.len(),
                    diff.reranked.len(),
                    best,
                    patterns,
                    if diff.coalesced > 0 {
                        format!(" | {} merged", diff.coalesced)
                    } else {
                        String::new()
                    },
                );
            }
        }

        // Periodic registry snapshot, as an operator dashboard would show
        // it: per-subscription queue depth and lifetime delivery counters.
        if (ts + 1) % 30 == 0 {
            let m = handle.subscriptions().metrics();
            println!(
                "t={ts:>3}  [registry] {} active, {} evaluations, {} notifications, \
                 {} coalesced",
                m.active, m.evaluations, m.notifications, m.coalesced
            );
            for info in handle.subscriptions().subscriptions() {
                println!(
                    "        {}: {} pending, {} delivered ({} merged) — {}",
                    info.id,
                    info.pending,
                    info.delivered,
                    info.coalesced,
                    info.key.describe()
                );
            }
        }
    }

    println!("\nFinal standing-query states:");
    for (&t, sub) in monitored.iter().zip(&subs) {
        let fresh = handle
            .query(&Query::terms([term_ids[t]]).top_k(5))
            .expect("final query");
        println!("  term {t} ({}):", sub.key().describe());
        for (rank, r) in fresh.results.iter().enumerate() {
            let doc = handle.collection().document(r.doc).clone();
            println!(
                "   {:>2}. doc {} (stream {}, t={}) score {:.2}",
                rank + 1,
                r.doc.0,
                doc.stream.0,
                doc.timestamp,
                r.score
            );
        }
    }
    println!("\nGround truth injected on the monitored terms:");
    for &t in &monitored {
        for &pid in dataset.patterns_of_term(t) {
            let p = &dataset.patterns()[pid];
            println!(
                "   term {t}: streams {:?} window {}..{}",
                p.streams, p.interval.start, p.interval.end
            );
        }
    }
}
