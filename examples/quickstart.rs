//! Quickstart: mine spatiotemporal burstiness patterns from a handful of
//! geostamped document streams.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tiny collection of five city streams over 30 days, injects a
//! burst of the term "earthquake" in two nearby cities, and shows what the
//! two miners of the paper report: the combinatorial pattern (STComb) and
//! the regional pattern (STLocal).

use std::collections::HashMap;

use stburst::core::{Pattern, STComb, STLocal, STLocalConfig};
use stburst::corpus::CollectionBuilder;
use stburst::geo::{GeoPoint, Rect};
use stburst::search::{BurstySearchEngine, EngineConfig, Query};

fn main() {
    // 1. Build a collection: five streams (cities), 30 daily timestamps.
    let mut builder = CollectionBuilder::new(30);
    let quake = builder.dict_mut().intern("earthquake");
    let weather = builder.dict_mut().intern("weather");

    let cities = [
        ("San Jose (CR)", 9.9, -84.1),
        ("Alajuela (CR)", 10.0, -84.2),
        ("Lima", -12.0, -77.0),
        ("Athens", 38.0, 23.7),
        ("Tokyo", 35.7, 139.7),
    ];
    let streams: Vec<_> = cities
        .iter()
        .map(|(name, lat, lon)| builder.add_stream(name, GeoPoint::new(*lat, *lon)))
        .collect();

    // 2. Background traffic: every city mentions "weather" daily and
    //    "earthquake" once in a while.
    for day in 0..30 {
        for &s in &streams {
            let mut counts = HashMap::new();
            counts.insert(weather, 5);
            if day % 9 == 0 {
                counts.insert(quake, 1);
            }
            builder.add_document(s, day, counts);
        }
    }
    // 3. The event: days 12-16, the two Costa Rican cities are flooded with
    //    earthquake coverage.
    for day in 12..=16 {
        for &s in &streams[..2] {
            let mut counts = HashMap::new();
            counts.insert(quake, 25);
            builder.add_document(s, day, counts);
        }
    }
    let collection = builder.build();

    // 4. STComb: which streams were simultaneously bursty, and when?
    println!("== STComb (combinatorial patterns) ==");
    for pattern in STComb::new().mine_collection(&collection, quake) {
        let names: Vec<&str> = pattern
            .streams
            .iter()
            .map(|&s| collection.stream(s).name.as_str())
            .collect();
        println!(
            "  streams {names:?}  days {}..{}  burstiness {:.2}",
            pattern.timeframe.start, pattern.timeframe.end, pattern.score
        );
    }

    // 5. STLocal: which map regions stayed bursty, over which window?
    println!("== STLocal (regional patterns) ==");
    let (patterns, _stats) = STLocal::mine_collection(&collection, quake, STLocalConfig::default());
    for pattern in patterns.iter().take(3) {
        let names: Vec<&str> = pattern
            .streams
            .iter()
            .map(|&s| collection.stream(s).name.as_str())
            .collect();
        println!(
            "  region {}  streams {names:?}  days {}..{}  w-score {:.2}",
            pattern.rect, pattern.timeframe.start, pattern.timeframe.end, pattern.score
        );
    }

    // 6. Patterns know how to test document overlap (used by the search
    //    engine): a document from San Jose on day 14 overlaps the top
    //    pattern, one from Tokyo does not.
    if let Some(top) = patterns.first() {
        println!("== Overlap checks on the top regional pattern ==");
        println!("  San Jose, day 14 -> {}", top.overlaps(streams[0], 14));
        println!("  Tokyo,    day 14 -> {}", top.overlaps(streams[4], 14));
    }

    // 7. Serve the mined patterns through the typed query DSL: "which
    //    documents were bursty for 'earthquake' in this window, in this
    //    region?" — the canonical spatiotemporal question, one call.
    println!("== Typed spatiotemporal query ==");
    let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
    engine.set_patterns(quake, &patterns);
    engine.finalize();
    let costa_rica = Rect::new(-85.0, 9.0, -83.0, 11.0); // lon x lat
    let response = engine
        .query(
            &Query::text("earthquake")
                .time_window(12..=16)
                .region(costa_rica)
                .top_k(3)
                .explain(true),
        )
        .expect("valid query");
    for (hit, why) in response.results.iter().zip(&response.explanations) {
        let doc = collection.document(hit.doc);
        let matched = &why.terms[0].patterns[0];
        println!(
            "  score {:>6.2}  day {:>2}  {}  (pattern days {}, region {})",
            hit.score,
            doc.timestamp,
            collection.stream(doc.stream).name,
            matched.interval,
            matched.region.map_or("-".into(), |r| r.to_string()),
        );
    }
    // A disjoint window returns nothing: the filter is part of the query.
    let off_window = engine
        .query(&Query::text("earthquake").time_window(0..=5).top_k(3))
        .expect("valid query");
    println!("  days 0..=5 instead: {} hits", off_window.results.len());
}
